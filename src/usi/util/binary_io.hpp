#ifndef USI_UTIL_BINARY_IO_HPP_
#define USI_UTIL_BINARY_IO_HPP_

/// \file binary_io.hpp
/// Minimal binary (de)serialization over stdio, used to persist indexes.
/// Little-endian host assumed (checked via a magic word on load); values are
/// written raw, vectors as a u64 length followed by the elements.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "usi/util/common.hpp"

namespace usi {

/// Buffered binary writer. All writes abort the stream on failure; finish
/// with Close(), whose result covers the final flush — stdio buffers
/// writes, so an out-of-space condition commonly surfaces only then, and a
/// caller that skipped Close() would report success on a truncated file.
class BinaryWriter {
 public:
  /// Opens \p path for writing (truncates).
  explicit BinaryWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "wb")) {}

  ~BinaryWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Whether every write so far succeeded. Not a completion check — only
  /// Close() observes the final buffer flush.
  bool ok() const { return file_ != nullptr && !failed_; }

  /// Flushes and closes, returning whether every write INCLUDING the final
  /// flush reached the filesystem. This is the authoritative success signal
  /// of a write session; ok() alone can still report true while the last
  /// buffered bytes are doomed (ENOSPC, quota, I/O error).
  bool Close() {
    if (file_ == nullptr) return false;
    failed_ = (std::fflush(file_) != 0) | failed_;
    failed_ = (std::fclose(file_) != 0) | failed_;
    file_ = nullptr;
    return !failed_;
  }

  /// Writes one trivially-copyable value.
  template <typename T>
  void Write(const T& value) {
    WriteRaw(&value, sizeof(T));
    static_assert(std::is_trivially_copyable_v<T>);
  }

  /// Writes \p bytes raw bytes.
  void WriteRaw(const void* data, std::size_t bytes) {
    if (!ok() || bytes == 0) return;
    failed_ |= std::fwrite(data, 1, bytes, file_) != bytes;
    if (!failed_) bytes_written_ += bytes;
  }

  /// Writes a span as a u64 length + raw elements (the vector wire format).
  template <typename T>
  void WriteSpan(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<u64>(values.size());
    WriteRaw(values.data(), values.size_bytes());
  }

  /// Writes a vector as length + raw elements.
  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    WriteSpan(std::span<const T>(values.data(), values.size()));
  }

  /// Pads with zero bytes up to absolute \p offset (section alignment).
  /// Writing past \p offset already is a caller bug.
  void PadTo(u64 offset) {
    if (!ok()) return;
    if (bytes_written_ > offset) {
      failed_ = true;
      return;
    }
    static constexpr char kZeros[64] = {};
    while (ok() && bytes_written_ < offset) {
      WriteRaw(kZeros, std::min<u64>(sizeof(kZeros), offset - bytes_written_));
    }
  }

  /// Bytes successfully written so far.
  u64 bytes_written() const { return bytes_written_; }

 private:
  std::FILE* file_;
  bool failed_ = false;
  u64 bytes_written_ = 0;
};

/// Buffered binary reader mirroring BinaryWriter.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : file_(std::fopen(path.c_str(), "rb")) {
    if (file_ != nullptr) {
      // Size errors (FIFOs, special files) degrade the remaining-bytes bound
      // to "unknown", leaving only the element cap — never to an empty file.
      std::error_code ec;
      const auto size = std::filesystem::file_size(path, ec);
      total_bytes_ = ec ? kUnknownSize : static_cast<u64>(size);
    }
  }

  ~BinaryReader() {
    if (file_ != nullptr) std::fclose(file_);
  }

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  /// Whether every read so far succeeded.
  bool ok() const { return file_ != nullptr && !failed_; }

  /// Reads one trivially-copyable value.
  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!ok()) return false;
    failed_ |= std::fread(value, sizeof(T), 1, file_) != 1;
    if (!failed_) consumed_bytes_ += sizeof(T);
    return ok();
  }

  /// Reads a vector written by WriteVector. Lengths above \p max_elements or
  /// beyond what the rest of the file can hold are treated as corruption, so
  /// a flipped length field fails the read instead of attempting a huge
  /// allocation.
  template <typename T>
  bool ReadVector(std::vector<T>* values, u64 max_elements = u64{1} << 40) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64 size = 0;
    if (!Read(&size) || size > max_elements ||
        size > RemainingBytes() / sizeof(T)) {
      failed_ = true;
      return false;
    }
    values->resize(size);
    if (size == 0) return true;
    failed_ |= std::fread(values->data(), sizeof(T), size, file_) != size;
    if (!failed_) consumed_bytes_ += sizeof(T) * size;
    return ok();
  }

  /// Whether the reads so far consumed the file exactly — no trailing bytes
  /// remain. Loaders finish with this so a concatenated, extended, or
  /// mismatched file is rejected instead of silently accepted on a prefix.
  /// False for files whose size could not be determined (FIFOs, special
  /// files): "exactly consumed" cannot be asserted there.
  bool ExactlyConsumed() const {
    return ok() && total_bytes_ != kUnknownSize &&
           consumed_bytes_ == total_bytes_;
  }

 private:
  static constexpr u64 kUnknownSize = static_cast<u64>(-1);

  /// Bytes between the current position and the end of the file. Computed
  /// from the size captured at open plus a consumed-bytes counter, so it
  /// stays correct for files beyond 2 GiB even where long is 32 bits.
  u64 RemainingBytes() const {
    if (total_bytes_ == kUnknownSize) return kUnknownSize;
    return total_bytes_ > consumed_bytes_ ? total_bytes_ - consumed_bytes_ : 0;
  }

  std::FILE* file_;
  bool failed_ = false;
  u64 total_bytes_ = 0;
  u64 consumed_bytes_ = 0;
};

}  // namespace usi

#endif  // USI_UTIL_BINARY_IO_HPP_
