#ifndef USI_UTIL_FAILPOINT_HPP_
#define USI_UTIL_FAILPOINT_HPP_

/// \file failpoint.hpp
/// Deterministic fault injection: named, compile-time-gated failpoints.
///
/// A failpoint is a named site in library code where a test (or the
/// USI_FAILPOINTS environment variable) can inject a failure: a thrown
/// exception, a simulated std::bad_alloc, or a soft "this step failed"
/// signal the surrounding code branches on. The chaos suite drives the
/// reliability layer — build-lane quarantine, save/load error paths, mmap
/// degradation, query-fallback containment — through these sites instead of
/// hoping real faults show up.
///
/// \par Compile-time gate
/// Sites only exist when the library is configured with -DUSI_FAILPOINTS=ON
/// (CMake option, propagated as a PUBLIC compile definition). Without it the
/// macros expand to `((void)0)` / `(false)` — zero code, zero data, zero
/// branches in production builds. The registry API below always links, so
/// tests compile either way and skip themselves when kEnabled is false.
///
/// \par Site macros
///   USI_FAILPOINT("build.sa");            // throws when armed kThrow /
///                                         // kBadAlloc; no-op otherwise
///   if (USI_FAILPOINT_FIRED("save.body")) // additionally: true when armed
///     return false;                       // kError (simulated soft failure)
///
/// Each macro expansion caches a reference to its Site in a function-local
/// static, so a disarmed evaluation costs one relaxed atomic load.
///
/// \par Arming
/// From tests: Arm("site", Action::kThrow) — with optional skip-N /
/// fire-at-most-N / percent controls (Spec). From the environment:
/// `USI_FAILPOINTS="multi.build=throw*2;save.body=error%50"` is applied once
/// at first registry use (format: `name=action[@skip][*fires][%percent]`).
/// Firing decisions are deterministic: counters plus a fixed-seed splitmix64
/// stream for percent draws, so a chaos run replays exactly.

#include <atomic>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "usi/util/common.hpp"

namespace usi {
namespace failpoint {

/// Whether failpoints are compiled into this build.
#if defined(USI_FAILPOINTS)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// What an armed site does when its firing conditions are met.
enum class Action : u8 {
  kOff = 0,   ///< Disarmed; the site is a no-op.
  kError,     ///< USI_FAILPOINT_FIRED evaluates true (soft failure signal).
  kThrow,     ///< Throws FailpointError.
  kBadAlloc,  ///< Throws std::bad_alloc (simulated allocation failure).
};

/// The exception Action::kThrow raises. Derives from std::runtime_error so
/// generic catch(std::exception&) containment handles it like any real
/// fault; the what() string names the site.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("failpoint fired: " + site) {}
};

/// Arming descriptor: when and how often an armed site fires.
struct Spec {
  Action action = Action::kOff;
  u64 skip = 0;       ///< Pass through this many evaluations first.
  u64 fires = 0;      ///< Fire at most this many times; 0 = unlimited.
  u32 percent = 100;  ///< Of eligible evaluations, fire this fraction.
  u64 seed = 0;       ///< Percent-draw stream seed (deterministic replay).
};

/// One named site. Sites are created on first use and never destroyed, so
/// the references the macros cache stay valid for the process lifetime.
class Site {
 public:
  /// The site named \p name, created if absent. Thread-safe.
  static Site& Get(std::string_view name);

  /// Evaluates the site: returns true when an armed kError fires, throws on
  /// kThrow / kBadAlloc, returns false otherwise. A disarmed evaluation is
  /// one relaxed load. Thread-safe.
  bool Evaluate();

  const std::string& name() const { return name_; }

  /// Evaluations while armed / times fired, since last Arm/Disarm.
  u64 hits() const;
  u64 fired() const;

 private:
  friend class Registry;
  explicit Site(std::string name) : name_(std::move(name)) {}

  /// Slow path once action_ is armed; returns the action to execute (kOff
  /// when skip/fires/percent suppress this evaluation).
  Action EvaluateArmed();

  const std::string name_;
  std::atomic<u8> action_{static_cast<u8>(Action::kOff)};
  mutable std::mutex mu_;  ///< Guards everything below.
  Spec spec_;
  u64 hits_ = 0;       ///< Evaluations while armed, since last Arm/Disarm.
  u64 fired_ = 0;      ///< Times the action actually executed.
  u64 rng_state_ = 0;  ///< splitmix64 stream for percent draws.
};

/// Arms \p site with \p spec, creating it if absent; resets its counters.
void Arm(std::string_view site, const Spec& spec);

/// Convenience arm: \p action firing at most \p fires times (0 = unlimited)
/// after skipping the first \p skip evaluations.
void Arm(std::string_view site, Action action, u64 fires = 0, u64 skip = 0);

/// Disarms \p site (no-op if it does not exist); resets its counters.
void Disarm(std::string_view site);

/// Disarms every site. Chaos tests call this in TearDown so an armed site
/// can never leak into the next test.
void DisarmAll();

/// Evaluations of \p site while armed since its last Arm/Disarm (0 if the
/// site does not exist). Lets tests assert a path was actually reached.
u64 HitCount(std::string_view site);

/// Times \p site actually fired since its last Arm/Disarm.
u64 FireCount(std::string_view site);

/// Names of every site that exists right now (created by macro evaluation,
/// Arm, or the environment), sorted. Powers the docs' failpoint catalog
/// cross-check and `usi_inspect failpoints`.
std::vector<std::string> SiteNames();

/// Parses one arming clause — `action[@skip][*fires][%percent]`, e.g.
/// "throw", "error*2", "badalloc@1", "error%25" — into \p spec. Returns
/// false (spec untouched) on malformed input. Exposed for tests.
bool ParseSpec(std::string_view text, Spec* spec);

/// Applies a full environment-style arming string:
/// `site=spec[;site=spec...]`. Returns the number of sites armed; malformed
/// clauses are skipped. The USI_FAILPOINTS variable goes through this once
/// at first registry use.
int ArmFromString(std::string_view text);

}  // namespace failpoint
}  // namespace usi

#if defined(USI_FAILPOINTS)
/// Evaluates the named failpoint: throws when armed kThrow / kBadAlloc,
/// otherwise a no-op (a kError arm is ignored — use USI_FAILPOINT_FIRED at
/// sites with a soft-failure branch).
#define USI_FAILPOINT(name)                              \
  do {                                                   \
    static ::usi::failpoint::Site& usi_failpoint_site =  \
        ::usi::failpoint::Site::Get(name);               \
    usi_failpoint_site.Evaluate();                       \
  } while (0)
/// As USI_FAILPOINT, but usable as a boolean expression: true when an armed
/// kError fires, so error-returning paths can simulate soft failures.
#define USI_FAILPOINT_FIRED(name)                        \
  ([]() -> ::usi::failpoint::Site& {                     \
    static ::usi::failpoint::Site& usi_failpoint_site =  \
        ::usi::failpoint::Site::Get(name);               \
    return usi_failpoint_site;                           \
  }()                                                    \
       .Evaluate())
#else
#define USI_FAILPOINT(name) ((void)0)
#define USI_FAILPOINT_FIRED(name) (false)
#endif

#endif  // USI_UTIL_FAILPOINT_HPP_
