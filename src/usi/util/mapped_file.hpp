#ifndef USI_UTIL_MAPPED_FILE_HPP_
#define USI_UTIL_MAPPED_FILE_HPP_

/// \file mapped_file.hpp
/// Memory-mapped file access and the atomic publish protocol.
///
/// This is the substrate of index format v3 (core/index_format.hpp): an
/// index file whose on-disk layout IS the in-memory layout is opened with
/// MappedFile and served straight out of the page cache — near-zero startup,
/// demand paging, and kernel-shared pages across serving processes.
///
/// \par Atomic publish protocol
/// Every persisted artifact goes through the same three-step protocol, so a
/// crash at ANY instant leaves the destination path either absent or holding
/// a complete previous image — never a torn write:
///
///   1. stage:   write the full image to `path.tmp.<pid>` (StageTempPath),
///   2. sync:    fsync the staged file (its bytes are durable before any
///               name points at them),
///   3. publish: rename(2) onto `path` — atomic within a filesystem — then
///               fsync the parent directory so the new name itself is
///               durable.
///
/// PublishFile implements steps 2-3. A process killed before the rename
/// leaves only a stale `path.tmp.<pid>` sibling, which readers never open
/// (the destination still holds the previous good image); RemoveStaleTemps
/// sweeps such leftovers on the next startup.

#include <csetjmp>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "usi/util/common.hpp"

namespace usi {

/// Read-only memory-mapped file. The mapping lives for the object's
/// lifetime; spans handed out by data() are invalidated by destruction.
///
/// Every open mapping is registered with the process-wide SIGBUS guard (see
/// MappedFaultGuard): a fault on a registered range — a page whose backing
/// file was truncated or revoked after open — can be converted into a clean
/// "this batch failed" return instead of crashing the process.
class MappedFile {
 public:
  /// Maps \p path read-only (MAP_SHARED, so identical pages are shared with
  /// every other process mapping the same file). Returns nullptr on open,
  /// stat, or mmap failure — including for empty files, which have nothing
  /// to map. \p out_errno, when non-null, receives the errno of a failed
  /// open/stat (0 for non-syscall failures like an empty file), so callers
  /// can distinguish a missing file from an unreadable one.
  static std::unique_ptr<MappedFile> OpenReadOnly(const std::string& path,
                                                  int* out_errno = nullptr);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// First mapped byte. Page-aligned (mmap guarantee), so any section offset
  /// aligned in the file is equally aligned in memory.
  const u8* data() const { return data_; }

  /// Mapped length in bytes (the file size at open time).
  std::size_t size() const { return size_; }

  /// Advises the kernel the whole mapping will be read sequentially soon
  /// (readahead for eager validation passes). Best-effort.
  void AdviseWillNeed() const;

  /// Advises random access (index serving probes pages out of order;
  /// default readahead would drag in neighbours pointlessly). Best-effort.
  void AdviseRandom() const;

 private:
  MappedFile(const u8* data, std::size_t size);

  const u8* data_ = nullptr;
  std::size_t size_ = 0;
};

namespace detail {

/// RAII frame for one guarded region on this thread: pushes a sigjmp target
/// the SIGBUS handler longjmps to when a fault lands inside a registered
/// mapped range. Frames nest (the previous target is restored on exit).
/// Internal to MappedFaultGuard::Run.
class FaultJmpScope {
 public:
  FaultJmpScope();
  ~FaultJmpScope();
  FaultJmpScope(const FaultJmpScope&) = delete;
  FaultJmpScope& operator=(const FaultJmpScope&) = delete;
  sigjmp_buf& jmp() { return buf_; }

 private:
  sigjmp_buf buf_;
  void* prev_;  ///< The enclosing frame's target (restored by the dtor).
};

}  // namespace detail

/// Converts SIGBUS on registered mapped ranges into a boolean failure.
///
/// A mapped index is only as durable as its backing file: truncate it (or
/// revoke the storage under it) while a query is demand-paging and the read
/// raises SIGBUS — by default, process death. Run(fn) executes fn with a
/// guard frame installed; if a fault lands inside any registered MappedFile
/// range, control returns here and Run reports false, letting the serving
/// layer fail the batch with kIndexUnavailable and fall back.
///
/// \par Containment contract
///  * Faults OUTSIDE registered ranges (a genuine heap/stack bug) re-raise
///    with the default disposition — the guard never swallows real crashes.
///  * Recovery uses siglongjmp, which unwinds no destructors: fn must be
///    effectively leaf code over plain buffers (the query path over mapped
///    sections qualifies: scratch buffers are owned by the caller and
///    reused, not freed). The skipped-destructor leak on the crash path is
///    the accepted price of not dying.
///  * The handler is async-signal-safe: the range registry is a fixed array
///    of atomics read lock-free, installed lazily on first registration.
///  * A fault while NO frame is active (mapped read outside Run) re-raises:
///    only explicitly guarded regions degrade.
class MappedFaultGuard {
 public:
  /// Runs \p fn; returns true when it completed, false when a SIGBUS on a
  /// registered mapped range aborted it. With no mappings registered this
  /// is a plain call (no sigsetjmp on the hot path).
  template <typename Fn>
  static bool Run(Fn&& fn) {
    if (!Engaged()) {
      std::forward<Fn>(fn)();
      return true;
    }
    detail::FaultJmpScope scope;
    if (sigsetjmp(scope.jmp(), 1) != 0) return false;  // Fault unwound here.
    std::forward<Fn>(fn)();
    return true;
  }

  /// Whether any mapped range is currently registered (i.e. a fault is
  /// possible and Run must arm a frame).
  static bool Engaged();

  /// Lifetime count of SIGBUS faults the guard recovered from.
  static u64 RecoveredFaults();
};

/// 64-bit checksum over an arbitrary byte range: FNV-1a folded over 64-bit
/// lanes with a final avalanche, so it runs at memory bandwidth instead of
/// the byte-at-a-time rate (section checksums cover multi-GB arrays). Not
/// cryptographic — it detects corruption, not adversaries.
u64 Checksum64(const void* data, std::size_t bytes);

/// The staging sibling the atomic publish protocol writes to:
/// `path.tmp.<pid>`. Pid-suffixed so concurrent writers never collide and a
/// crash leaves an identifiable leftover.
std::string StageTempPath(const std::string& path);

/// Steps 2-3 of the protocol: fsync \p staged, rename it onto \p path, then
/// fsync the parent directory. On any failure the staged file is left in
/// place (the caller removes it) and \p path is untouched. Returns success.
bool PublishFile(const std::string& staged, const std::string& path);

/// Removes leftover `path.tmp.*` staging siblings from crashed writers.
/// Safe to call while other processes serve from \p path — only staging
/// names are touched, never the published file. Returns how many were
/// removed.
int RemoveStaleTemps(const std::string& path);

}  // namespace usi

#endif  // USI_UTIL_MAPPED_FILE_HPP_
