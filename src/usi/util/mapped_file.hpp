#ifndef USI_UTIL_MAPPED_FILE_HPP_
#define USI_UTIL_MAPPED_FILE_HPP_

/// \file mapped_file.hpp
/// Memory-mapped file access and the atomic publish protocol.
///
/// This is the substrate of index format v3 (core/index_format.hpp): an
/// index file whose on-disk layout IS the in-memory layout is opened with
/// MappedFile and served straight out of the page cache — near-zero startup,
/// demand paging, and kernel-shared pages across serving processes.
///
/// \par Atomic publish protocol
/// Every persisted artifact goes through the same three-step protocol, so a
/// crash at ANY instant leaves the destination path either absent or holding
/// a complete previous image — never a torn write:
///
///   1. stage:   write the full image to `path.tmp.<pid>` (StageTempPath),
///   2. sync:    fsync the staged file (its bytes are durable before any
///               name points at them),
///   3. publish: rename(2) onto `path` — atomic within a filesystem — then
///               fsync the parent directory so the new name itself is
///               durable.
///
/// PublishFile implements steps 2-3. A process killed before the rename
/// leaves only a stale `path.tmp.<pid>` sibling, which readers never open
/// (the destination still holds the previous good image); RemoveStaleTemps
/// sweeps such leftovers on the next startup.

#include <cstddef>
#include <memory>
#include <string>

#include "usi/util/common.hpp"

namespace usi {

/// Read-only memory-mapped file. The mapping lives for the object's
/// lifetime; spans handed out by data() are invalidated by destruction.
class MappedFile {
 public:
  /// Maps \p path read-only (MAP_SHARED, so identical pages are shared with
  /// every other process mapping the same file). Returns nullptr on open,
  /// stat, or mmap failure — including for empty files, which have nothing
  /// to map.
  static std::unique_ptr<MappedFile> OpenReadOnly(const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// First mapped byte. Page-aligned (mmap guarantee), so any section offset
  /// aligned in the file is equally aligned in memory.
  const u8* data() const { return data_; }

  /// Mapped length in bytes (the file size at open time).
  std::size_t size() const { return size_; }

  /// Advises the kernel the whole mapping will be read sequentially soon
  /// (readahead for eager validation passes). Best-effort.
  void AdviseWillNeed() const;

  /// Advises random access (index serving probes pages out of order;
  /// default readahead would drag in neighbours pointlessly). Best-effort.
  void AdviseRandom() const;

 private:
  MappedFile(const u8* data, std::size_t size) : data_(data), size_(size) {}

  const u8* data_ = nullptr;
  std::size_t size_ = 0;
};

/// 64-bit checksum over an arbitrary byte range: FNV-1a folded over 64-bit
/// lanes with a final avalanche, so it runs at memory bandwidth instead of
/// the byte-at-a-time rate (section checksums cover multi-GB arrays). Not
/// cryptographic — it detects corruption, not adversaries.
u64 Checksum64(const void* data, std::size_t bytes);

/// The staging sibling the atomic publish protocol writes to:
/// `path.tmp.<pid>`. Pid-suffixed so concurrent writers never collide and a
/// crash leaves an identifiable leftover.
std::string StageTempPath(const std::string& path);

/// Steps 2-3 of the protocol: fsync \p staged, rename it onto \p path, then
/// fsync the parent directory. On any failure the staged file is left in
/// place (the caller removes it) and \p path is untouched. Returns success.
bool PublishFile(const std::string& staged, const std::string& path);

/// Removes leftover `path.tmp.*` staging siblings from crashed writers.
/// Safe to call while other processes serve from \p path — only staging
/// names are touched, never the published file. Returns how many were
/// removed.
int RemoveStaleTemps(const std::string& path);

}  // namespace usi

#endif  // USI_UTIL_MAPPED_FILE_HPP_
