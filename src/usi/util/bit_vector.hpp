#ifndef USI_UTIL_BIT_VECTOR_HPP_
#define USI_UTIL_BIT_VECTOR_HPP_

/// \file bit_vector.hpp
/// Plain and rank-enabled bit vectors.
///
/// USI_TOP-K construction (Section IV, phase (ii)) marks the occurrence start
/// positions of all top-K substrings of one length in an n-bit vector B_l and
/// then streams a window over the text. BitVector is that vector; it supports
/// O(1) set/test/clear and a fast "clear only what was set" reset so one
/// buffer is reused across the L_K distinct lengths. RankBitVector adds
/// popcount-based rank for the succinct-structure tests and ablations.

#include <cstddef>
#include <vector>

#include "usi/util/common.hpp"

namespace usi {

/// Fixed-capacity bit vector backed by 64-bit words.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of \p num_bits zero bits.
  explicit BitVector(std::size_t num_bits) { Resize(num_bits); }

  /// Resizes to \p num_bits, zeroing all content.
  void Resize(std::size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

  /// Number of addressable bits.
  std::size_t size() const { return num_bits_; }

  /// Sets bit \p i.
  void Set(std::size_t i) {
    USI_DCHECK(i < num_bits_);
    words_[i >> 6] |= (u64{1} << (i & 63));
  }

  /// Clears bit \p i.
  void Clear(std::size_t i) {
    USI_DCHECK(i < num_bits_);
    words_[i >> 6] &= ~(u64{1} << (i & 63));
  }

  /// Tests bit \p i.
  bool Test(std::size_t i) const {
    USI_DCHECK(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Zeroes every word (O(n/64)).
  void Reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// Word-level fast path: number of backing 64-bit words.
  std::size_t NumWords() const { return words_.size(); }

  /// Reads backing word \p w (bits [64*w, 64*w + 64)). Hot loops that scan
  /// or copy whole vectors should use this instead of per-bit Test — one
  /// load per 64 positions.
  u64 GetWord(std::size_t w) const {
    USI_DCHECK(w < words_.size());
    return words_[w];
  }

  /// Overwrites backing word \p w. Bits past size() are masked off here,
  /// so the invariant Count and the rank structures rely on — tail bits
  /// stay zero — cannot be broken through this path.
  void SetWord(std::size_t w, u64 value) {
    USI_DCHECK(w < words_.size());
    const std::size_t tail = num_bits_ & 63;
    if (w == words_.size() - 1 && tail != 0) {
      value &= (u64{1} << tail) - 1;
    }
    words_[w] = value;
  }

  /// Number of set bits.
  std::size_t Count() const {
    std::size_t total = 0;
    for (u64 word : words_) total += static_cast<std::size_t>(__builtin_popcountll(word));
    return total;
  }

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const { return words_.capacity() * sizeof(u64); }

 private:
  std::size_t num_bits_ = 0;
  std::vector<u64> words_;
};

/// Bit vector with O(1) rank support (one superblock count per 512 bits plus
/// per-word popcounts at query time). Build once, then query.
///
/// Storage is either owned (built from a BitVector) or a non-owning view over
/// externally managed word/directory arrays (FromRaw) — persisted structures
/// serve rank queries straight out of an mmap'd image. Queries always read
/// through words_p_/block_rank_p_, so both modes share one code path; the
/// backing of a view must outlive the object.
class RankBitVector {
 public:
  RankBitVector() = default;

  /// Takes ownership of the bits of \p bits and builds the rank directory.
  explicit RankBitVector(const BitVector& bits, std::size_t num_bits);

  // Copies re-anchor the raw pointers at the copied vectors; moves transfer
  // the heap buffers, so the copied pointers stay valid.
  RankBitVector(const RankBitVector& other) { *this = other; }
  RankBitVector& operator=(const RankBitVector& other) {
    words_ = other.words_;
    block_rank_ = other.block_rank_;
    num_bits_ = other.num_bits_;
    ones_ = other.ones_;
    view_ = other.view_;
    words_p_ = view_ ? other.words_p_ : words_.data();
    block_rank_p_ = view_ ? other.block_rank_p_ : block_rank_.data();
    return *this;
  }
  RankBitVector(RankBitVector&&) noexcept = default;
  RankBitVector& operator=(RankBitVector&&) noexcept = default;

  /// Wraps externally managed arrays without copying: \p words must hold
  /// NumWordsFor(num_bits) bit words (tail bits past \p num_bits zero) and
  /// \p block_rank the NumBlocksFor(num_bits) + 1 directory entries exactly
  /// as an owning build lays them out (last entry = total ones). Both must
  /// outlive the returned object.
  static RankBitVector FromRaw(const u64* words, const u64* block_rank,
                               std::size_t num_bits) {
    RankBitVector rbv;
    rbv.num_bits_ = num_bits;
    rbv.words_p_ = words;
    rbv.block_rank_p_ = block_rank;
    rbv.ones_ = static_cast<std::size_t>(block_rank[NumBlocksFor(num_bits)]);
    rbv.view_ = true;
    return rbv;
  }

  /// rank1(i): number of set bits strictly before position \p i.
  std::size_t Rank1(std::size_t i) const;

  /// Total set bits.
  std::size_t Ones() const { return ones_; }

  /// Tests bit \p i.
  bool Test(std::size_t i) const {
    return (words_p_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of addressable bits.
  std::size_t size() const { return num_bits_; }

  /// Whether the arrays are owned (false for FromRaw views).
  bool OwnsStorage() const { return !view_; }

  /// Backing words (NumWordsFor(size()) of them); what serializers persist.
  const u64* words_data() const { return words_p_; }

  /// Rank directory (NumBlocksFor(size()) + 1 entries).
  const u64* block_rank_data() const { return block_rank_p_; }

  /// Bit words needed for \p num_bits bits.
  static constexpr std::size_t NumWordsFor(std::size_t num_bits) {
    return (num_bits + 63) / 64;
  }

  /// Superblock count for \p num_bits bits (directory has one more entry).
  static constexpr std::size_t NumBlocksFor(std::size_t num_bits) {
    return (NumWordsFor(num_bits) + kWordsPerBlock - 1) / kWordsPerBlock;
  }

  /// Heap footprint in bytes; views report the bytes they reference.
  std::size_t SizeInBytes() const {
    if (view_) {
      return (NumWordsFor(num_bits_) + NumBlocksFor(num_bits_) + 1) *
             sizeof(u64);
    }
    return words_.capacity() * sizeof(u64) + block_rank_.capacity() * sizeof(u64);
  }

 private:
  static constexpr std::size_t kWordsPerBlock = 8;  // 512-bit superblocks.

  std::size_t num_bits_ = 0;
  std::size_t ones_ = 0;
  std::vector<u64> words_;
  std::vector<u64> block_rank_;  // Set bits before each superblock.
  /// Query-path pointers: into the vectors when owning, into the adopted
  /// backing when a view.
  const u64* words_p_ = nullptr;
  const u64* block_rank_p_ = nullptr;
  bool view_ = false;
};

}  // namespace usi

#endif  // USI_UTIL_BIT_VECTOR_HPP_
