#ifndef USI_TOPK_TOPK_TRIE_HPP_
#define USI_TOPK_TOPK_TRIE_HPP_

/// \file topk_trie.hpp
/// Top-K Trie (Section VII): the Misra-Gries-on-a-trie scheme of Dinklage,
/// Fischer & Prezza [25], adapted to the substrings of one string.
///
/// A trie of at most K nodes is maintained while scanning S left to right.
/// At each position the scan walks down the trie along the text, incrementing
/// the counter of every matched node; when the walk falls off the trie, one
/// extension node is admitted if the budget allows, otherwise a global
/// Misra-Gries decrement is charged (implemented as a lazily-applied debt,
/// with periodic pruning of nodes whose counter fell to the debt level).
/// Reported counts are count - debt: one-sided lower bounds, exactly the
/// Misra-Gries guarantee. As Section VII proves, the scheme fails on long
/// periodic inputs — the trie cannot retain deep paths under eviction
/// pressure — which the adversarial tests and benches demonstrate.

#include "usi/text/alphabet.hpp"
#include "usi/topk/topk_types.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Tuning knobs for Top-K Trie.
struct TopKTrieOptions {
  std::size_t node_budget = 0;  ///< Max trie nodes; 0 = 4k (a small multiple
                                ///< of k keeps recall reasonable, as in [25]).
  index_t max_depth = 4096;     ///< Cap on per-position walk depth.
};

/// Cost/shape counters for the benches.
struct TopKTrieStats {
  u64 total_walk_steps = 0;   ///< Trie edges traversed over the whole scan.
  u64 evictions = 0;          ///< Misra-Gries decrement events (debt).
  std::size_t space_bytes = 0;
};

/// Estimates the top-\p k frequent substrings of \p text.
TopKList TopKTrie(const Text& text, u64 k, const TopKTrieOptions& options = {},
                  TopKTrieStats* stats = nullptr);

}  // namespace usi

#endif  // USI_TOPK_TOPK_TRIE_HPP_
