#include "usi/topk/approximate_topk.hpp"

#include <algorithm>
#include <memory>

#include "usi/hash/karp_rabin.hpp"
#include "usi/suffix/esa.hpp"
#include "usi/suffix/lce.hpp"
#include "usi/suffix/sparse_suffix_array.hpp"
#include "usi/util/radix_sort.hpp"

namespace usi {
namespace {

std::unique_ptr<LceOracle> MakeLceOracle(const Text& text,
                                         const KarpRabinHasher& hasher,
                                         const ApproximateTopKOptions& options) {
  switch (options.lce_backend) {
    case LceBackendKind::kSampledKr: {
      const index_t rate = options.lce_sample_rate > 0
                               ? options.lce_sample_rate
                               : std::max<index_t>(1, options.rounds);
      return std::make_unique<SampledKrLce>(text, hasher, rate);
    }
    case LceBackendKind::kFullKr:
      return std::make_unique<KrLce>(text, hasher);
    case LceBackendKind::kRmq:
      return std::make_unique<RmqLce>(text);
    case LceBackendKind::kNaive:
      return std::make_unique<NaiveLce>(text);
  }
  return nullptr;
}

/// Mines the top-k substrings of one sampled round (Section VI, Step 3):
/// bottom-up traversal of the sparse index, radix sort of the resulting
/// nodes by sampled frequency, then listing.
std::vector<TopKSubstring> MineRound(const SparseSuffixIndex& sparse,
                                     index_t n, u64 k) {
  const std::size_t m = sparse.positions.size();
  std::vector<index_t> suffix_len(m);
  for (std::size_t i = 0; i < m; ++i) {
    suffix_len[i] = n - sparse.positions[i];
  }
  std::vector<SuffixTreeNode> nodes = CollectSuffixTreeNodes(sparse.lcp, suffix_len);
  // Sort by (sampled frequency desc, depth asc); frequencies <= m.
  const u64 stride = static_cast<u64>(n) + 1;
  RadixSortByKey(&nodes, stride * stride, [&](const SuffixTreeNode& node) {
    return (stride - 1 - node.frequency()) * stride + node.depth;
  });
  std::vector<TopKSubstring> mined;
  mined.reserve(std::min<u64>(k, 2 * m));
  for (const SuffixTreeNode& node : nodes) {
    if (mined.size() >= k) break;
    for (index_t len = node.parent_depth + 1;
         len <= node.depth && mined.size() < k; ++len) {
      mined.push_back(TopKSubstring{len, node.frequency(),
                                    sparse.positions[node.lb], kInvalidIndex,
                                    kInvalidIndex});
    }
  }
  return mined;
}

/// Merges the running list with a round's list (Section VI, Step 4):
/// lexicographic sort of the concatenation via LCE comparisons, frequency
/// summation of duplicates, then re-sort by frequency and truncation to k.
std::vector<TopKSubstring> MergeLists(std::vector<TopKSubstring> merged,
                                      const LceOracle& lce, u64 k) {
  std::sort(merged.begin(), merged.end(),
            [&](const TopKSubstring& a, const TopKSubstring& b) {
              return lce.CompareFragments(a.witness, a.length, b.witness,
                                          b.length) < 0;
            });
  std::vector<TopKSubstring> combined;
  combined.reserve(merged.size());
  for (const TopKSubstring& item : merged) {
    if (!combined.empty() && combined.back().length == item.length &&
        lce.CompareFragments(combined.back().witness, combined.back().length,
                             item.witness, item.length) == 0) {
      combined.back().frequency += item.frequency;
    } else {
      combined.push_back(item);
    }
  }
  // Keep the k most frequent (ties shorter-first, mirroring Exact-Top-K).
  std::sort(combined.begin(), combined.end(),
            [](const TopKSubstring& a, const TopKSubstring& b) {
              if (a.frequency != b.frequency) return a.frequency > b.frequency;
              return a.length < b.length;
            });
  if (combined.size() > k) combined.resize(k);
  return combined;
}

}  // namespace

TopKList ApproximateTopK(const Text& text, u64 k,
                         const ApproximateTopKOptions& options) {
  TopKList result;
  result.exact = false;
  const index_t n = static_cast<index_t>(text.size());
  if (n == 0 || k == 0) return result;
  const u32 s = std::max<u32>(1, options.rounds);

  KarpRabinHasher hasher(options.seed);
  const std::unique_ptr<LceOracle> lce = MakeLceOracle(text, hasher, options);
  const u64 pool = k * std::max<u64>(1, options.oversample);

  std::vector<TopKSubstring> running;
  for (u32 round = 0; round < s && round < n; ++round) {
    // Step 1: sample positions round, round + s, round + 2s, ...
    std::vector<index_t> positions;
    positions.reserve(n / s + 1);
    for (index_t p = round; p < n; p += s) positions.push_back(p);
    // Step 2: sparse suffix array + sparse LCP over the sample.
    const SparseSuffixIndex sparse =
        BuildSparseSuffixIndex(std::move(positions), *lce);
    // Step 3: top candidates of the sample (oversampled; see options).
    std::vector<TopKSubstring> mined = MineRound(sparse, n, pool);
    // Step 4: merge into the running estimate.
    if (running.empty()) {
      running = std::move(mined);
    } else {
      running.reserve(running.size() + mined.size());
      running.insert(running.end(), mined.begin(), mined.end());
      running = MergeLists(std::move(running), *lce, pool);
    }
  }
  if (running.size() > k) running.resize(k);
  result.items = std::move(running);
  return result;
}

}  // namespace usi
