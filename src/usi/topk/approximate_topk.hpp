#ifndef USI_TOPK_APPROXIMATE_TOPK_HPP_
#define USI_TOPK_APPROXIMATE_TOPK_HPP_

/// \file approximate_topk.hpp
/// Approximate-Top-K (Section VI, Theorem 3).
///
/// s sampling rounds; round i builds a sparse suffix index over positions
/// {i, i+s, i+2s, ...}, mines the round's top-K via the same bottom-up
/// traversal as the exact algorithm, and lexicographically merges the result
/// into the running list, summing the per-round frequencies. Reported
/// frequencies never exceed the truth (one-sided error). Extra space is
/// O(n/s + K) on top of the text; time is ~O(n log + sK log).

#include "usi/text/alphabet.hpp"
#include "usi/topk/topk_types.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// LCE backend selection for the sampled rounds (ablation; DESIGN.md Sec. 3).
enum class LceBackendKind {
  kSampledKr,  ///< O(n/s) words, O(s + log n) query — the paper-faithful one.
  kFullKr,     ///< O(n) words, O(log n) query.
  kRmq,        ///< O(n) words, O(1) query (fastest; defeats the space goal).
  kNaive,      ///< O(1) words, O(lce) query.
};

/// Tuning knobs for Approximate-Top-K.
struct ApproximateTopKOptions {
  u32 rounds = 8;  ///< The paper's s; O(log n) is the recommended regime.
  LceBackendKind lce_backend = LceBackendKind::kSampledKr;
  /// Prefix-sample spacing of the sampled-KR LCE; 0 means "use rounds", which
  /// keeps LCE space at O(n/s) in step with the index space.
  index_t lce_sample_rate = 0;
  /// Candidate-list oversampling factor: each round mines oversample*k
  /// candidates and the running merge keeps oversample*k, trimming to k only
  /// at the end. Borderline substrings whose per-round rank fluctuates around
  /// k would otherwise be dropped from some rounds and under-counted; the
  /// extra space is a constant factor of O(K) and the one-sided-error
  /// guarantee is unaffected (counts are still sums of true sample counts).
  u32 oversample = 4;
  u64 seed = 0xA77C;  ///< Seeds the Karp-Rabin base.
};

/// Estimates the top-\p k frequent substrings of \p text.
TopKList ApproximateTopK(const Text& text, u64 k,
                         const ApproximateTopKOptions& options = {});

}  // namespace usi

#endif  // USI_TOPK_APPROXIMATE_TOPK_HPP_
