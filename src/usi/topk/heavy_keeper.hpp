#ifndef USI_TOPK_HEAVY_KEEPER_HPP_
#define USI_TOPK_HEAVY_KEEPER_HPP_

/// \file heavy_keeper.hpp
/// SubstringHK (Section VII): HeavyKeeper [24] adapted from items to the
/// substrings of a single string.
///
/// Scan rule, per the paper: at every position i, try to insert S[i] into
/// ssummary, then try S[i..i+l] only while S[i..i+l-1] made it into
/// ssummary; each candidate is counted through the exponential-decay sketch,
/// and admitted to ssummary when its estimate beats the current minimum.
/// Fingerprints extend in O(1) per added letter, so a candidate costs O(1).
///
/// The paper throttles extension with probability 1/c^l; taken literally
/// that makes substrings beyond ~30 letters unreachable, while the paper's
/// own experiments show SubstringHK finding length-1577 substrings. We treat
/// the membership rule as the primary gate (it already bounds work:
/// extensions happen only through prefixes resident in ssummary) and expose
/// the geometric coin as an option for the strict variant. Either way the
/// algorithm exhibits the Section VII failure mode — it misses long frequent
/// substrings and loses half the output on (AB)^{n/2} — which is what the
/// reproduction must show.

#include "usi/text/alphabet.hpp"
#include "usi/topk/topk_types.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Tuning knobs for SubstringHK.
struct SubstringHkOptions {
  std::size_t sketch_width = 0;   ///< 0: derive from k (2k buckets per row).
  std::size_t sketch_depth = 2;   ///< HeavyKeeper uses small depth.
  double decay_base = 1.08;       ///< b of the decay sketch.
  bool strict_extension_coin = false;  ///< Extend with prob 1/c^l (paper text).
  double extension_base = 1.08;        ///< c of the extension coin.
  index_t max_length = 0;  ///< Safety cap on candidate length; 0 = text size.
  /// Work budget in hashed substrings (the paper's z); 0 = unlimited. When
  /// exhausted the scan stops early and stats->timed_out is set — the bench
  /// analogue of the paper's "did not terminate within 5 days" rows.
  u64 max_hashed_substrings = 0;
  u64 seed = 0x5EED5;
};

/// Statistics the paper reports about SubstringHK's cost.
struct SubstringHkStats {
  u64 hashed_substrings = 0;  ///< The paper's z (drives SH's runtime).
  std::size_t space_bytes = 0;  ///< Sketch + summary footprint.
  bool timed_out = false;       ///< Work budget exhausted before the end.
};

/// Estimates the top-\p k frequent substrings of \p text with SubstringHK.
/// \p stats (optional) receives cost counters.
TopKList SubstringHeavyKeeper(const Text& text, u64 k,
                              const SubstringHkOptions& options = {},
                              SubstringHkStats* stats = nullptr);

}  // namespace usi

#endif  // USI_TOPK_HEAVY_KEEPER_HPP_
