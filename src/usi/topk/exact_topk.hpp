#ifndef USI_TOPK_EXACT_TOPK_HPP_
#define USI_TOPK_EXACT_TOPK_HPP_

/// \file exact_topk.hpp
/// Exact-Top-K (Section V, Theorem 2): TOP-K-SUB in O(n + K) time and O(n)
/// space via the SubstringStats structure. Thin convenience wrapper for
/// callers that do not need to keep the stats around.

#include "usi/text/alphabet.hpp"
#include "usi/topk/topk_types.hpp"

namespace usi {

/// Returns the exact top-\p k frequent substrings of \p text (ties broken
/// shorter-first, matching the Section V ordering).
TopKList ExactTopK(const Text& text, u64 k);

}  // namespace usi

#endif  // USI_TOPK_EXACT_TOPK_HPP_
