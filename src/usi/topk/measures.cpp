#include "usi/topk/measures.hpp"

#include <algorithm>
#include <cmath>

namespace usi {
namespace {

std::vector<index_t> SortedFrequencies(const std::vector<TopKSubstring>& list) {
  std::vector<index_t> freqs;
  freqs.reserve(list.size());
  for (const TopKSubstring& item : list) freqs.push_back(item.frequency);
  std::sort(freqs.begin(), freqs.end());
  return freqs;
}

}  // namespace

double TopKAccuracyPercent(const std::vector<TopKSubstring>& exact,
                           const std::vector<TopKSubstring>& estimated) {
  if (exact.empty()) return 100.0;
  const std::vector<index_t> a = SortedFrequencies(exact);
  const std::vector<index_t> b = SortedFrequencies(estimated);
  // Multiset intersection size via a two-pointer sweep.
  std::size_t matches = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++matches;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return 100.0 * static_cast<double>(matches) / static_cast<double>(a.size());
}

double TopKRelativeError(const std::vector<TopKSubstring>& exact,
                         const std::vector<TopKSubstring>& estimated) {
  double exact_mass = 0;
  for (const TopKSubstring& item : exact) exact_mass += item.frequency;
  if (exact_mass == 0) return 0;
  double estimated_mass = 0;
  for (const TopKSubstring& item : estimated) estimated_mass += item.frequency;
  return (exact_mass - estimated_mass) / exact_mass;
}

double TopKNdcg(const std::vector<TopKSubstring>& exact,
                const std::vector<TopKSubstring>& estimated) {
  if (exact.empty()) return 1.0;
  auto dcg = [](const std::vector<TopKSubstring>& list, std::size_t limit) {
    double sum = 0;
    for (std::size_t rank = 0; rank < std::min(limit, list.size()); ++rank) {
      sum += static_cast<double>(list[rank].frequency) /
             std::log2(static_cast<double>(rank) + 2.0);
    }
    return sum;
  };
  const double ideal = dcg(exact, exact.size());
  if (ideal == 0) return 1.0;
  return dcg(estimated, exact.size()) / ideal;
}

index_t LongestReportedLength(const std::vector<TopKSubstring>& list) {
  index_t longest = 0;
  for (const TopKSubstring& item : list) {
    longest = std::max(longest, item.length);
  }
  return longest;
}

}  // namespace usi
