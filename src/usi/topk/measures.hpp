#ifndef USI_TOPK_MEASURES_HPP_
#define USI_TOPK_MEASURES_HPP_

/// \file measures.hpp
/// Quality measures of Section IX-B: Accuracy, Relative Error, NDCG.
///
/// Accuracy follows the paper's definition — "the percentage of substrings in
/// T'_K with the same frequency as those in T_K" — evaluated as the multiset
/// overlap between the two frequency lists, so an estimator earns credit for
/// each reported substring whose (estimated) frequency is matched one-to-one
/// against an exact top-K frequency. Relative Error and NDCG use the reported
/// frequencies as-is; Approximate-Top-K under-estimates one-sidedly, so RE is
/// non-negative for it.

#include <vector>

#include "usi/topk/topk_types.hpp"

namespace usi {

/// Accuracy in percent (0..100).
double TopKAccuracyPercent(const std::vector<TopKSubstring>& exact,
                           const std::vector<TopKSubstring>& estimated);

/// Relative error of the total reported frequency mass.
double TopKRelativeError(const std::vector<TopKSubstring>& exact,
                         const std::vector<TopKSubstring>& estimated);

/// Normalized discounted cumulative gain, with the exact frequencies as the
/// ideal gains (Jarvelin & Kekalainen [54]).
double TopKNdcg(const std::vector<TopKSubstring>& exact,
                const std::vector<TopKSubstring>& estimated);

/// Longest reported substring length (the Section IX diagnostic for why TT
/// and SH fail on IOT-like data).
index_t LongestReportedLength(const std::vector<TopKSubstring>& list);

}  // namespace usi

#endif  // USI_TOPK_MEASURES_HPP_
