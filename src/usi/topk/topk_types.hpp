#ifndef USI_TOPK_TOPK_TYPES_HPP_
#define USI_TOPK_TOPK_TYPES_HPP_

/// \file topk_types.hpp
/// Common representation of mined top-K frequent substrings (TOP-K-SUB,
/// Problem 1).

#include <vector>

#include "usi/util/common.hpp"

namespace usi {

/// One mined substring. Exact miners (Section V) report it as the paper's
/// triplet <lcp, lb, rb> — an SA interval — plus a witness; approximate
/// miners (Sections VI, VII) report only a witness occurrence and an
/// estimated frequency (a lower bound on the truth for Approximate-Top-K).
struct TopKSubstring {
  index_t length = 0;            ///< Substring length (the paper's lcp).
  index_t frequency = 0;         ///< Exact or estimated occurrence count.
  index_t witness = 0;           ///< One occurrence start position in S.
  index_t lb = kInvalidIndex;    ///< SA interval left end (exact miners only).
  index_t rb = kInvalidIndex;    ///< SA interval right end (exact miners only).

  /// Whether the SA interval is populated.
  bool HasInterval() const { return lb != kInvalidIndex; }
};

/// A mined list plus provenance, as consumed by the USI index builder.
struct TopKList {
  std::vector<TopKSubstring> items;
  bool exact = false;  ///< True when frequencies/intervals are exact.
};

}  // namespace usi

#endif  // USI_TOPK_TOPK_TYPES_HPP_
