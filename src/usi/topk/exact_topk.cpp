#include "usi/topk/exact_topk.hpp"

#include "usi/topk/substring_stats.hpp"

namespace usi {

TopKList ExactTopK(const Text& text, u64 k) {
  return SubstringStats(text).TopK(k);
}

}  // namespace usi
