#ifndef USI_TOPK_SUBSTRING_STATS_HPP_
#define USI_TOPK_SUBSTRING_STATS_HPP_

/// \file substring_stats.hpp
/// The linear-space data structure of Section V.
///
/// Holds the suffix-tree node table T (sorted by frequency desc, string
/// depth asc) and the parallel prefix arrays Q (cumulative number of distinct
/// substrings) and L (cumulative number of distinct lengths). It serves the
/// three tasks of Section V:
///   (i)  Exact-Top-K: list the top-K frequent substrings as <length, lb, rb>
///        triplets in O(n + K) (Theorem 2);
///   (ii) given K, report tau_K and L_K (query/construction-time tuning) in
///        O(log n);
///   (iii) given tau, report K_tau and L_tau (size tuning) in O(log n).
///
/// The structure also owns SA and LCP so the USI index can share them instead
/// of rebuilding (the paper's construction reuses the same index of S).

#include <vector>

#include "usi/suffix/esa.hpp"
#include "usi/text/alphabet.hpp"
#include "usi/topk/topk_types.hpp"
#include "usi/util/common.hpp"

namespace usi {

class ThreadPool;

/// Section V data structure (T, Q, L + the suffix array view).
class SubstringStats {
 public:
  /// Builds SA, LCP, enumerates suffix-tree nodes and radix sorts them.
  /// O(n) time, O(n) space.
  explicit SubstringStats(const Text& text);

  /// Builder-stage wiring: adopts a suffix array already built for \p text
  /// (UsiBuilder times SA construction as its own stage and shares the
  /// array), then derives LCP and the T/Q/L tables as above. With \p pool,
  /// both the LCP scan (chunked Kasai) and the suffix-tree node enumeration
  /// (chunked LCP-interval traversal seeded from boundary stack snapshots)
  /// run on the pool; T is order-identical for every pool width.
  SubstringStats(const Text& text, std::vector<index_t> sa,
                 ThreadPool* pool = nullptr);

  /// Task (ii): tuning parameters implied by a choice of K.
  struct KTuning {
    index_t tau;          ///< tau_K: min frequency among the top-K substrings.
    index_t num_lengths;  ///< L_K: distinct lengths among them.
  };
  KTuning EstimateForK(u64 k) const;

  /// Task (iii): tuning parameters implied by a choice of tau.
  struct TauTuning {
    u64 num_substrings;   ///< K_tau: number of tau-frequent substrings.
    index_t num_lengths;  ///< L_tau.
  };
  TauTuning EstimateForTau(index_t tau) const;

  /// Task (i): the top-K frequent substrings with exact frequencies and SA
  /// intervals, most frequent first, ties broken shorter-first.
  TopKList TopK(u64 k) const;

  /// One point of the (tau, K, L) trade-off curve. Section X proposes
  /// enumerating these to choose the USI operating point (cf. the skyline
  /// operator [58]): tau drives the query-time bound O(m + tau), K the table
  /// size O(n + K), and L the construction time O(n * L).
  struct TradeOffPoint {
    index_t tau = 0;
    u64 k = 0;
    index_t num_lengths = 0;
  };

  /// The full trade-off curve: one point per distinct substring frequency,
  /// in decreasing tau order. O(n) time, at most n points.
  std::vector<TradeOffPoint> TradeOffCurve() const;

  /// The point with the largest K not exceeding \p max_table_entries — the
  /// best query-time bound achievable within a hash-table budget. Returns a
  /// zero point when even the smallest K overshoots.
  TradeOffPoint RecommendForBudget(u64 max_table_entries) const;

  /// Total number of distinct substrings of the text.
  u64 TotalDistinctSubstrings() const { return q_.empty() ? 0 : q_.back(); }

  /// Shared suffix array of the text.
  const std::vector<index_t>& sa() const { return sa_; }

  /// Releases the suffix array so the USI index can adopt it instead of
  /// rebuilding (the stats object must not serve further TopK calls after
  /// this). The paper's construction reuses the same index of S this way.
  std::vector<index_t> TakeSa() { return std::move(sa_); }

  /// Shared LCP array.
  const std::vector<index_t>& lcp() const { return lcp_; }

  /// Releases the LCP array. It is only needed while the T/Q/L tables are
  /// derived (i.e. during construction); every query method works without
  /// it. UsiBuilder calls this right after the mine stage starts so the
  /// O(n)-word buffer never overlaps the table-population footprint.
  void ReleaseLcp();

  /// Number of triplets in T (explicit suffix-tree nodes).
  std::size_t NodeCount() const { return t_.size(); }

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const;

 private:
  /// One row of T: a suffix-tree node with its frequency and edge interval
  /// of string depths (parent_depth, depth].
  struct Triplet {
    index_t frequency;
    index_t depth;
    index_t parent_depth;
    index_t lb;
    index_t rb;
  };

  /// Fills t_ with the suffix-tree node triplets — sequentially, or as a
  /// chunked LCP-interval traversal over \p pool (identical order either
  /// way).
  void EnumerateNodes(const std::vector<index_t>& suffix_len,
                      ThreadPool* pool);

  index_t n_ = 0;
  std::vector<index_t> sa_;
  std::vector<index_t> lcp_;
  std::vector<Triplet> t_;
  std::vector<u64> q_;      ///< q_[i] = distinct substrings in t_[0..i].
  std::vector<index_t> l_;  ///< l_[i] = distinct lengths in t_[0..i].
};

}  // namespace usi

#endif  // USI_TOPK_SUBSTRING_STATS_HPP_
