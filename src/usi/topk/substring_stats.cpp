#include "usi/topk/substring_stats.hpp"

#include <algorithm>

#include "usi/parallel/thread_pool.hpp"
#include "usi/suffix/lcp_array.hpp"
#include "usi/suffix/suffix_array.hpp"
#include "usi/util/radix_sort.hpp"

namespace usi {

SubstringStats::SubstringStats(const Text& text)
    : SubstringStats(text, BuildSuffixArray(text)) {}

namespace {

/// Below this node count the chunked traversal is pure overhead.
constexpr index_t kParallelEnumerateThreshold = index_t{1} << 14;

}  // namespace

SubstringStats::SubstringStats(const Text& text, std::vector<index_t> sa,
                               ThreadPool* pool)
    : n_(static_cast<index_t>(text.size())) {
  USI_CHECK(sa.size() == text.size());
  sa_ = std::move(sa);
  lcp_ = BuildLcpArray(text, sa_, pool);

  const std::vector<index_t> suffix_len = DenseSuffixLengths(sa_, n_);
  EnumerateNodes(suffix_len, pool);

  // Sort by (frequency desc, depth asc). Composite radix key: both components
  // are <= n, so key = (n - frequency) * (n + 1) + depth fits in 64 bits.
  const u64 stride = static_cast<u64>(n_) + 1;
  RadixSortByKey(&t_, stride * stride, [&](const Triplet& t) {
    return (stride - 1 - t.frequency) * stride + t.depth;
  });

  // Q: cumulative count of distinct substrings (q(v) = depth - parent_depth
  // per node). L: cumulative count of distinct lengths. Because an ancestor
  // always has strictly larger frequency than its descendants, every ancestor
  // of t_[i] appears before it, so the union of covered lengths over any
  // prefix of T is exactly [1 .. max depth seen] (DESIGN.md Section 5.2).
  q_.resize(t_.size());
  l_.resize(t_.size());
  u64 cumulative = 0;
  index_t max_depth = 0;
  for (std::size_t i = 0; i < t_.size(); ++i) {
    cumulative += t_[i].depth - t_[i].parent_depth;
    max_depth = std::max(max_depth, t_[i].depth);
    q_[i] = cumulative;
    l_[i] = max_depth;
  }
}

void SubstringStats::EnumerateNodes(const std::vector<index_t>& suffix_len,
                                    ThreadPool* pool) {
  const index_t m = n_;
  auto as_triplet = [](const SuffixTreeNode& node) {
    return Triplet{node.frequency(), node.depth, node.parent_depth, node.lb,
                   node.rb};
  };

  const unsigned workers = pool == nullptr ? 1 : pool->thread_count();
  if (workers <= 1 || m < kParallelEnumerateThreshold) {
    t_.reserve(2 * static_cast<std::size_t>(m));
    EnumerateSuffixTreeNodes(lcp_, suffix_len, [&](const SuffixTreeNode& node) {
      t_.push_back(as_triplet(node));
    });
    t_.shrink_to_fit();  // The 2n reserve over-provisions; drop the slack.
    return;
  }

  // Chunked LCP-interval traversal. A lightweight sequential pre-pass
  // replays only the interval-stack transitions and snapshots the stack at
  // every chunk start; each chunk then runs the full traversal of its step
  // range with true global stack state, so concatenating the per-chunk
  // outputs in chunk order reproduces the sequential emission order exactly
  // — the property the byte-identical-serialization contract rests on.
  // Chunk boundaries depend only on worker count via the chunk count, and
  // the output is order-identical for every chunking, so any pool width
  // (including 1, the inline path above) yields the same t_.
  const std::size_t want_chunks = std::min<std::size_t>(
      4 * workers, std::max<std::size_t>(2, m / (kParallelEnumerateThreshold / 4)));
  const index_t span = static_cast<index_t>((m + want_chunks - 1) / want_chunks);
  // Boundaries are clamped to [1, m] (ceil rounding in span can push the
  // nominal last boundaries past m at extreme pool widths); the real chunk
  // count follows from the boundaries that survived.
  std::vector<index_t> boundaries;
  boundaries.reserve(want_chunks - 1);
  for (std::size_t c = 1;
       c < want_chunks && 1 + c * static_cast<std::size_t>(span) <= m; ++c) {
    boundaries.push_back(static_cast<index_t>(1 + c * span));
  }
  const std::vector<std::vector<LcpStackEntry>> snapshots =
      LcpIntervalStacksAt(lcp_, boundaries);
  const std::size_t chunks = boundaries.size() + 1;

  std::vector<std::vector<Triplet>> partial(chunks);
  ParallelFor(pool, chunks, [&](std::size_t c, unsigned /*worker*/) {
    const index_t begin = c == 0 ? 1 : boundaries[c - 1];
    const index_t end = c == boundaries.size() ? m + 1 : boundaries[c];
    std::vector<LcpStackEntry> stack =
        c == 0 ? std::vector<LcpStackEntry>{{0, 0}} : snapshots[c - 1];
    std::vector<Triplet>& out = partial[c];
    out.reserve(2 * static_cast<std::size_t>(end - begin) + stack.size());
    EnumerateSuffixTreeNodeRange(lcp_, suffix_len, begin, end, stack,
                                 [&](const SuffixTreeNode& node) {
                                   out.push_back(as_triplet(node));
                                 });
  });

  std::size_t total = 0;
  for (const std::vector<Triplet>& p : partial) total += p.size();
  t_.reserve(total);
  for (std::vector<Triplet>& p : partial) {
    t_.insert(t_.end(), p.begin(), p.end());
    std::vector<Triplet>().swap(p);  // Release as we go; halves the overlap.
  }
}

void SubstringStats::ReleaseLcp() { std::vector<index_t>().swap(lcp_); }

SubstringStats::KTuning SubstringStats::EstimateForK(u64 k) const {
  USI_CHECK(k >= 1);
  if (q_.empty()) return {0, 0};
  // Smallest index i with Q[i] >= k (Q is increasing).
  const auto it = std::lower_bound(q_.begin(), q_.end(), k);
  const std::size_t i =
      (it == q_.end()) ? q_.size() - 1 : static_cast<std::size_t>(it - q_.begin());
  return {t_[i].frequency, l_[i]};
}

SubstringStats::TauTuning SubstringStats::EstimateForTau(index_t tau) const {
  if (t_.empty() || t_.front().frequency < tau) return {0, 0};
  // Largest index i with t_[i].frequency >= tau (frequencies descending).
  std::size_t lo = 0;
  std::size_t hi = t_.size();  // First index with frequency < tau.
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (t_[mid].frequency >= tau) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const std::size_t i = lo - 1;
  return {q_[i], l_[i]};
}

TopKList SubstringStats::TopK(u64 k) const {
  TopKList result;
  result.exact = true;
  result.items.reserve(std::min<u64>(k, TotalDistinctSubstrings()));
  for (const Triplet& t : t_) {
    if (result.items.size() >= k) break;
    for (index_t len = t.parent_depth + 1;
         len <= t.depth && result.items.size() < k; ++len) {
      result.items.push_back(
          TopKSubstring{len, t.frequency, sa_[t.lb], t.lb, t.rb});
    }
  }
  return result;
}

std::vector<SubstringStats::TradeOffPoint> SubstringStats::TradeOffCurve()
    const {
  std::vector<TradeOffPoint> curve;
  for (std::size_t i = 0; i < t_.size(); ++i) {
    // Emit one point at the last triplet of every distinct frequency.
    if (i + 1 == t_.size() || t_[i + 1].frequency != t_[i].frequency) {
      curve.push_back({t_[i].frequency, q_[i], l_[i]});
    }
  }
  return curve;
}

SubstringStats::TradeOffPoint SubstringStats::RecommendForBudget(
    u64 max_table_entries) const {
  const std::vector<TradeOffPoint> curve = TradeOffCurve();
  TradeOffPoint best;
  for (const TradeOffPoint& point : curve) {
    if (point.k <= max_table_entries) {
      best = point;  // K grows along the curve; keep the last fitting point.
    } else {
      break;
    }
  }
  return best;
}

std::size_t SubstringStats::SizeInBytes() const {
  return sa_.capacity() * sizeof(index_t) + lcp_.capacity() * sizeof(index_t) +
         t_.capacity() * sizeof(Triplet) + q_.capacity() * sizeof(u64) +
         l_.capacity() * sizeof(index_t);
}

}  // namespace usi
