#include "usi/topk/heavy_keeper.hpp"

#include <algorithm>
#include <cmath>

#include "usi/hash/count_min_sketch.hpp"
#include "usi/hash/karp_rabin.hpp"
#include "usi/topk/frequency_summary.hpp"
#include "usi/util/rng.hpp"

namespace usi {

TopKList SubstringHeavyKeeper(const Text& text, u64 k,
                              const SubstringHkOptions& options,
                              SubstringHkStats* stats) {
  TopKList result;
  result.exact = false;
  const index_t n = static_cast<index_t>(text.size());
  if (n == 0 || k == 0) return result;

  const std::size_t width =
      options.sketch_width > 0 ? options.sketch_width
                               : std::max<std::size_t>(64, 2 * k);
  DecaySketch sketch(width, options.sketch_depth, options.decay_base,
                     options.seed);
  FrequencySummary summary(k);
  KarpRabinHasher hasher(options.seed ^ 0xFEED);
  const index_t max_length = options.max_length > 0 ? options.max_length : n;

  u64 hashed = 0;
  bool timed_out = false;
  for (index_t i = 0; i < n && !timed_out; ++i) {
    u64 fp = 0;
    for (index_t len = 1; i + len <= n && len <= max_length; ++len) {
      fp = hasher.Append(fp, text[i + len - 1]);  // O(1) per extension.
      const PatternKey key{fp, len};
      ++hashed;
      if (options.max_hashed_substrings > 0 &&
          hashed > options.max_hashed_substrings) {
        timed_out = true;
        break;
      }
      const u32 estimate = sketch.Insert(key.fp ^ (u64{key.len} << 48));
      summary.Offer(key, estimate, i, len);
      // Extension gate: the next longer candidate is considered only if this
      // one is resident in ssummary (plus the optional geometric coin).
      if (!summary.Contains(key)) break;
      if (options.strict_extension_coin) {
        const double p = std::pow(options.extension_base,
                                  -static_cast<double>(len));
        const u64 coin = Rng::Mix(static_cast<u64>(i) << 32 | len, options.seed);
        if (static_cast<double>(coin >> 11) * 0x1.0p-53 >= p) break;
      }
    }
  }

  if (stats != nullptr) {
    stats->hashed_substrings = hashed;
    stats->space_bytes = sketch.SizeInBytes() + summary.SizeInBytes();
    stats->timed_out = timed_out;
  }
  result.items = summary.Report(k);
  return result;
}

}  // namespace usi
