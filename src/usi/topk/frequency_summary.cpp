#include "usi/topk/frequency_summary.hpp"

#include <algorithm>

namespace usi {

FrequencySummary::FrequencySummary(std::size_t capacity)
    : capacity_(capacity) {
  USI_CHECK(capacity >= 1);
  heap_.reserve(capacity);
  map_.reserve(capacity * 2);
}

void FrequencySummary::Offer(const PatternKey& key, u32 count, index_t witness,
                             index_t length) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    Entry& entry = heap_[it->second];
    if (count > entry.count) {
      entry.count = count;
      SiftDown(it->second);  // Counts grow, so the entry can only sink.
    }
    return;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back(Entry{key, count, witness, length});
    map_.emplace(key, heap_.size() - 1);
    SiftUp(heap_.size() - 1);
    return;
  }
  if (count <= heap_[0].count) return;
  map_.erase(heap_[0].key);
  heap_[0] = Entry{key, count, witness, length};
  map_.emplace(key, 0);
  SiftDown(0);
}

std::vector<TopKSubstring> FrequencySummary::Report(u64 k) const {
  std::vector<Entry> sorted = heap_;
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.length < b.length;
  });
  if (sorted.size() > k) sorted.resize(k);
  std::vector<TopKSubstring> report;
  report.reserve(sorted.size());
  for (const Entry& entry : sorted) {
    report.push_back(TopKSubstring{entry.length, entry.count, entry.witness,
                                   kInvalidIndex, kInvalidIndex});
  }
  return report;
}

std::size_t FrequencySummary::SizeInBytes() const {
  return heap_.capacity() * sizeof(Entry) +
         map_.size() * (sizeof(PatternKey) + 2 * sizeof(std::size_t));
}

void FrequencySummary::SiftUp(std::size_t pos) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (heap_[parent].count <= heap_[pos].count) break;
    HeapSwap(parent, pos);
    pos = parent;
  }
}

void FrequencySummary::SiftDown(std::size_t pos) {
  while (true) {
    const std::size_t left = 2 * pos + 1;
    const std::size_t right = 2 * pos + 2;
    std::size_t smallest = pos;
    if (left < heap_.size() && heap_[left].count < heap_[smallest].count) {
      smallest = left;
    }
    if (right < heap_.size() && heap_[right].count < heap_[smallest].count) {
      smallest = right;
    }
    if (smallest == pos) break;
    HeapSwap(smallest, pos);
    pos = smallest;
  }
}

void FrequencySummary::HeapSwap(std::size_t a, std::size_t b) {
  std::swap(heap_[a], heap_[b]);
  map_[heap_[a].key] = a;
  map_[heap_[b].key] = b;
}

}  // namespace usi
