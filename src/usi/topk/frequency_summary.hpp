#ifndef USI_TOPK_FREQUENCY_SUMMARY_HPP_
#define USI_TOPK_FREQUENCY_SUMMARY_HPP_

/// \file frequency_summary.hpp
/// The ssummary structure of HeavyKeeper [24], adapted to substrings: a
/// capacity-K set of (fingerprint, length) keys with estimated counts and a
/// witness occurrence, supporting O(1) membership, O(log K) count updates,
/// and min-count eviction. Backed by an indexed binary min-heap.

#include <unordered_map>
#include <vector>

#include "usi/hash/caches.hpp"
#include "usi/hash/fingerprint_table.hpp"
#include "usi/topk/topk_types.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Min-heap summary of the K highest-count strings seen so far.
class FrequencySummary {
 public:
  explicit FrequencySummary(std::size_t capacity);

  /// Whether \p key is currently tracked.
  bool Contains(const PatternKey& key) const {
    return map_.find(key) != map_.end();
  }

  /// Smallest tracked count (0 when empty).
  u32 MinCount() const { return heap_.empty() ? 0 : heap_[0].count; }

  /// Whether the summary holds `capacity` strings.
  bool Full() const { return heap_.size() >= capacity_; }

  /// Number of tracked strings.
  std::size_t size() const { return heap_.size(); }

  /// HeavyKeeper admission: if \p key is tracked, raise its count to
  /// max(current, count); otherwise insert it, evicting the min-count string
  /// when full — but only if count exceeds that minimum. \p witness and
  /// \p length describe the substring S[witness .. witness+length).
  void Offer(const PatternKey& key, u32 count, index_t witness, index_t length);

  /// Dumps tracked strings, highest count first, at most \p k items.
  std::vector<TopKSubstring> Report(u64 k) const;

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const;

 private:
  struct Entry {
    PatternKey key;
    u32 count = 0;
    index_t witness = 0;
    index_t length = 0;
  };

  void SiftUp(std::size_t pos);
  void SiftDown(std::size_t pos);
  void HeapSwap(std::size_t a, std::size_t b);

  std::size_t capacity_;
  std::vector<Entry> heap_;
  std::unordered_map<PatternKey, std::size_t, PatternKeyHash> map_;
};

}  // namespace usi

#endif  // USI_TOPK_FREQUENCY_SUMMARY_HPP_
