#include "usi/topk/topk_trie.hpp"

#include <algorithm>
#include <unordered_map>

namespace usi {
namespace {

struct TrieNode {
  index_t parent = kInvalidIndex;
  index_t depth = 0;
  index_t first_seen = 0;  ///< Witness: substring = text[first_seen, +depth).
  Symbol edge_symbol = 0;  ///< Label of the edge from the parent.
  u64 count = 0;           ///< Raw counter; effective count = count - debt.
  bool alive = false;
  std::unordered_map<Symbol, index_t> children;
};

class Trie {
 public:
  Trie(std::size_t budget, index_t max_depth)
      : budget_(budget), max_depth_(max_depth) {
    nodes_.reserve(budget + 1);
    nodes_.emplace_back();  // Root (depth 0, never counted, not budgeted).
    nodes_[0].alive = true;
  }

  /// Processes one text position: walk, count, maybe admit one extension.
  void Scan(const Text& text, index_t i, TopKTrieStats* stats) {
    index_t node = 0;
    index_t depth = 0;
    const index_t n = static_cast<index_t>(text.size());
    while (i + depth < n && depth < max_depth_) {
      auto it = nodes_[node].children.find(text[i + depth]);
      if (it == nodes_[node].children.end()) break;
      node = it->second;
      ++depth;
      nodes_[node].count += 1;
      if (stats != nullptr) ++stats->total_walk_steps;
    }
    if (i + depth >= n || depth >= max_depth_) return;
    // Admit one extension node, or charge a Misra-Gries decrement.
    if (live_count_ < budget_) {
      const index_t child = AllocateNode();
      TrieNode& child_node = nodes_[child];
      child_node.parent = node;
      child_node.depth = depth + 1;
      child_node.first_seen = i;
      child_node.edge_symbol = text[i + depth];
      child_node.count = debt_ + 1;  // Effective count 1, Misra-Gries style.
      nodes_[node].children.emplace(text[i + depth], child);
      ++live_count_;
    } else {
      ++debt_;
      if (stats != nullptr) ++stats->evictions;
      if (debt_ >= next_prune_debt_) {
        Prune();
        next_prune_debt_ = debt_ + std::max<u64>(1, budget_ / 4);
      }
    }
  }

  std::vector<TopKSubstring> Report(u64 k) const {
    std::vector<const TrieNode*> live;
    live.reserve(live_count_);
    for (std::size_t idx = 1; idx < nodes_.size(); ++idx) {
      if (nodes_[idx].alive && nodes_[idx].count > debt_) {
        live.push_back(&nodes_[idx]);
      }
    }
    std::sort(live.begin(), live.end(), [](const TrieNode* a, const TrieNode* b) {
      if (a->count != b->count) return a->count > b->count;
      return a->depth < b->depth;
    });
    if (live.size() > k) live.resize(k);
    std::vector<TopKSubstring> report;
    report.reserve(live.size());
    for (const TrieNode* node : live) {
      report.push_back(TopKSubstring{node->depth,
                                     static_cast<index_t>(node->count - debt_),
                                     node->first_seen, kInvalidIndex,
                                     kInvalidIndex});
    }
    return report;
  }

  std::size_t SizeInBytes() const {
    std::size_t total = nodes_.capacity() * sizeof(TrieNode) +
                        free_list_.capacity() * sizeof(index_t);
    for (const TrieNode& node : nodes_) {
      total += node.children.size() *
               (sizeof(Symbol) + sizeof(index_t) + sizeof(void*));
    }
    return total;
  }

 private:
  index_t AllocateNode() {
    index_t idx;
    if (!free_list_.empty()) {
      idx = free_list_.back();
      free_list_.pop_back();
      nodes_[idx] = TrieNode{};
    } else {
      idx = static_cast<index_t>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[idx].alive = true;
    return idx;
  }

  /// Removes every leaf whose effective count is zero, cascading upwards, so
  /// the node vector stays at O(budget) live slots. Slots are recycled.
  void Prune() {
    for (index_t idx = 1; idx < nodes_.size(); ++idx) {
      index_t cur = idx;
      while (cur != 0 && nodes_[cur].alive && nodes_[cur].children.empty() &&
             nodes_[cur].count <= debt_) {
        const index_t parent = nodes_[cur].parent;
        nodes_[parent].children.erase(nodes_[cur].edge_symbol);
        nodes_[cur].alive = false;
        nodes_[cur].children.clear();
        free_list_.push_back(cur);
        --live_count_;
        cur = parent;
      }
    }
  }

  std::size_t budget_;
  index_t max_depth_;
  std::vector<TrieNode> nodes_;
  std::vector<index_t> free_list_;
  std::size_t live_count_ = 0;
  u64 debt_ = 0;
  u64 next_prune_debt_ = 1;
};

}  // namespace

TopKList TopKTrie(const Text& text, u64 k, const TopKTrieOptions& options,
                  TopKTrieStats* stats) {
  TopKList result;
  result.exact = false;
  if (text.empty() || k == 0) return result;
  const std::size_t budget =
      options.node_budget > 0 ? options.node_budget : 4 * k;
  Trie trie(budget, options.max_depth);
  for (index_t i = 0; i < text.size(); ++i) {
    trie.Scan(text, i, stats);
  }
  if (stats != nullptr) stats->space_bytes = trie.SizeInBytes();
  result.items = trie.Report(k);
  return result;
}

}  // namespace usi
