#ifndef USI_PARALLEL_THREAD_POOL_HPP_
#define USI_PARALLEL_THREAD_POOL_HPP_

/// \file thread_pool.hpp
/// Fixed-width thread pool and a deterministic parallel-for.
///
/// The pool is the substrate of the parallel build pipeline (UsiBuilder) and
/// of batched query serving (UsiService). Design rules, chosen so that a
/// parallel run is bit-reproducible against a sequential one:
///
///  * Work is expressed as indexed items; ParallelFor hands every index to
///    exactly one worker. Callers write results into per-index slots (or
///    per-worker partials merged in index order afterwards), never into
///    shared accumulators, so the combined output is independent of both the
///    thread count and the dynamic schedule.
///  * Each ParallelFor invocation passes a dense worker id in
///    [0, workers()) alongside the item index, for thread-confined scratch
///    (per-worker Karp-Rabin hashers, occurrence-mark bit vectors, ...).
///  * A null pool (or a single-thread pool) degrades to an inline loop on
///    the calling thread — the sequential build is literally the same code.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "usi/util/common.hpp"

namespace usi {

/// A fixed set of worker threads draining one task queue.
class ThreadPool {
 public:
  /// Spawns \p threads workers; 0 means HardwareConcurrency().
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues \p task for execution on some worker.
  void Run(std::function<void()> task);

  /// As Run, but returns a future that becomes ready when \p task has
  /// finished executing. This is the completion plumbing the async layers
  /// build on (UsiMultiService's build lane waits on these futures during
  /// shutdown). The future's wait() must not be called from inside a task of
  /// the same pool — like a nested ParallelFor, that can exhaust the workers.
  ///
  /// A task exception propagates into the future (get() rethrows). Unlike a
  /// bare packaged_task, the pool also TRACKS whether such an exception was
  /// ever consumed: a failure the caller never looked at is a swallowed
  /// fault, and teardown logs every one (PendingTaskExceptions counts them
  /// live, for tests and supervisors).
  std::future<void> Submit(std::function<void()> task);

  /// Completed Submit tasks whose exception no one has consumed (via the
  /// returned future's get()/wait()) yet. Nonzero at destruction is logged.
  std::size_t PendingTaskExceptions() const;

  /// std::thread::hardware_concurrency() clamped to >= 1.
  static unsigned HardwareConcurrency();

 private:
  /// Shared completion record of one Submit task; lets teardown tell a
  /// consumed failure (caller saw it rethrown) from a swallowed one.
  struct SubmitState;

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;

  mutable std::mutex submit_mu_;  ///< Guards submit_states_.
  std::vector<std::shared_ptr<SubmitState>> submit_states_;
};

/// Runs body(index, worker) for every index in [0, count) and returns once
/// all of them completed. Items are claimed dynamically (an atomic cursor),
/// but each runs exactly once and `worker` is a dense id in [0, W) where
/// W = min(pool->thread_count(), count) — use it to index per-worker scratch;
/// no two concurrently-running bodies share a worker id. With a null pool
/// the loop runs inline on the calling thread with worker == 0.
///
/// Must not be called from inside a pool task of the same pool (the caller
/// blocks until completion, so nested use can exhaust the workers).
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t index, unsigned worker)>&
                     body);

}  // namespace usi

#endif  // USI_PARALLEL_THREAD_POOL_HPP_
