#include "usi/parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <latch>
#include <string>
#include <utility>

#include "usi/util/failpoint.hpp"

namespace usi {

/// Completion record shared between a Submit task, the future handed to the
/// caller, and the pool's teardown audit. `done`/`failed` are written by the
/// worker before the promise is fulfilled; `consumed` flips when the caller
/// actually waits on the returned future — the only way the exception can
/// have been observed.
struct ThreadPool::SubmitState {
  std::promise<void> promise;
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::atomic<bool> consumed{false};
  std::string what;  ///< Set before `failed`; read only after `done`.
};

namespace {

std::string DescribeException(std::exception_ptr error) {
  try {
    std::rethrow_exception(std::move(error));
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-std exception";
  }
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = HardwareConcurrency();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Swallowed-exception audit: a Submit task that failed, whose future no
  // one ever consumed, died silently — the bug class this log exists for.
  // (After the joins every task has finished, so the records are final.)
  std::lock_guard<std::mutex> lock(submit_mu_);
  for (const auto& state : submit_states_) {
    if (state->failed.load(std::memory_order_acquire) &&
        !state->consumed.load(std::memory_order_acquire)) {
      std::fprintf(stderr,
                   "ThreadPool: Submit task exception was never consumed: %s\n",
                   state->what.c_str());
    }
  }
}

void ThreadPool::Run(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    USI_CHECK(!stopping_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto state = std::make_shared<SubmitState>();
  std::future<void> inner = state->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    // Prune records nobody can complain about anymore (succeeded, or failed
    // and consumed), so a long-lived pool's audit list stays bounded by the
    // number of in-flight + swallowed-failure tasks.
    std::erase_if(submit_states_, [](const auto& s) {
      return s->done.load(std::memory_order_acquire) &&
             (!s->failed.load(std::memory_order_acquire) ||
              s->consumed.load(std::memory_order_acquire));
    });
    submit_states_.push_back(state);
  }
  Run([task = std::move(task), state] {
    try {
      USI_FAILPOINT("pool.task");
      task();
      state->done.store(true, std::memory_order_release);
      state->promise.set_value();
    } catch (...) {
      state->what = DescribeException(std::current_exception());
      state->failed.store(true, std::memory_order_release);
      state->done.store(true, std::memory_order_release);
      state->promise.set_exception(std::current_exception());
    }
  });
  // A deferred wrapper around the inner future: get()/wait() on the future
  // we return runs this lambda, which is exactly the moment the caller
  // observes the task's outcome — including a rethrown exception — so it
  // marks the record consumed before forwarding.
  return std::async(std::launch::deferred,
                    [state, inner = std::move(inner)]() mutable {
                      state->consumed.store(true, std::memory_order_release);
                      inner.get();
                    });
}

std::size_t ThreadPool::PendingTaskExceptions() const {
  std::lock_guard<std::mutex> lock(submit_mu_);
  std::size_t pending = 0;
  for (const auto& state : submit_states_) {
    if (state->done.load(std::memory_order_acquire) &&
        state->failed.load(std::memory_order_acquire) &&
        !state->consumed.load(std::memory_order_acquire)) {
      ++pending;
    }
  }
  return pending;
}

unsigned ThreadPool::HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t index, unsigned worker)>&
                     body) {
  if (count == 0) return;
  const unsigned workers =
      pool == nullptr
          ? 1
          : static_cast<unsigned>(std::min<std::size_t>(pool->thread_count(),
                                                        count));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i, 0);
    return;
  }

  // One long-lived task per worker id; items are claimed through a shared
  // cursor so uneven item costs cannot idle a worker.
  std::atomic<std::size_t> cursor{0};
  std::latch done(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool->Run([&, w] {
      for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
           i < count; i = cursor.fetch_add(1, std::memory_order_relaxed)) {
        body(i, w);
      }
      done.count_down();
    });
  }
  done.wait();
}

}  // namespace usi
