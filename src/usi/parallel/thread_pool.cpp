#include "usi/parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <latch>
#include <utility>

namespace usi {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = HardwareConcurrency();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Run(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    USI_CHECK(!stopping_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  Run([packaged] { (*packaged)(); });
  return future;
}

unsigned ThreadPool::HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t index, unsigned worker)>&
                     body) {
  if (count == 0) return;
  const unsigned workers =
      pool == nullptr
          ? 1
          : static_cast<unsigned>(std::min<std::size_t>(pool->thread_count(),
                                                        count));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i, 0);
    return;
  }

  // One long-lived task per worker id; items are claimed through a shared
  // cursor so uneven item costs cannot idle a worker.
  std::atomic<std::size_t> cursor{0};
  std::latch done(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool->Run([&, w] {
      for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
           i < count; i = cursor.fetch_add(1, std::memory_order_relaxed)) {
        body(i, w);
      }
      done.count_down();
    });
  }
  done.wait();
}

}  // namespace usi
