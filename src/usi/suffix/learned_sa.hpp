#ifndef USI_SUFFIX_LEARNED_SA_HPP_
#define USI_SUFFIX_LEARNED_SA_HPP_

/// \file learned_sa.hpp
/// Learned last-mile search over the suffix array ("Bounding the Last Mile:
/// Efficient Learned String Indexing", PAPERS.md).
///
/// The first few symbols of every suffix, packed most-significant-first
/// into a u64, form a key sequence that is non-strictly monotone in SA
/// order (the full lexicographic order refines the key order). Packing is
/// alphabet-aware: texts store the compact alphabet [0, sigma), so each
/// symbol needs only ceil(log2(sigma)) bits and a key covers
/// 64 / ceil(log2(sigma)) characters — 8 for byte-like texts, 32 for a
/// 4-symbol (DNA-like) text. That depth is what makes the model usable on
/// low-entropy alphabets: 8 *bytes* of a DNA text carry 16 bits of key
/// entropy, leaving equal-key runs thousands of entries long whose inner
/// boundaries no model over those keys can predict. A RadixSpline-style model —
/// a radix table routing into greedy shrinking-cone linear segments with a
/// configurable error bound ε — predicts, for any query key q, a position
/// among those keys. Two models share one radix geometry: the LOWER model is
/// fit on each distinct key's first occurrence (where lower_bound(key)
/// lands), the UPPER model on the first position AFTER each key's run
/// (where upper_bound(key) lands) — low-entropy alphabets make equal-key
/// runs thousands of entries long, and without the upper fit every
/// interval's right boundary would start a run-length gallop. FindInterval
/// turns a pattern search into one prediction per boundary, verifies that
/// the ≤2ε window actually brackets the boundary (galloping outward when it
/// does not — see below), and finishes with a last-mile binary search that
/// uses word-at-a-time compares and Manber-Myers llcp/rlcp skipping so deep
/// probes never re-read bytes already known equal.
///
/// \par ε contract
/// Each model's prediction is within ε positions of its boundary whenever
/// the query key occurs as a key. Queries between stored keys (and interval
/// boundaries strictly inside a run, for patterns longer than the packed
/// key depth) escape that bound. The last-mile search is therefore
/// self-correcting: before the windowed binary search it checks the window
/// edges and widens exponentially (galloping) when the boundary lies
/// outside. The model is purely an accelerator — FindInterval returns
/// byte-identical answers to FindSaInterval on every input, and degrades to
/// O(log n) probes, never to a wrong interval.
///
/// \par Storage
/// The model is position-only (no text/SA pointers), trivially serialized:
/// a 64-byte payload header, the two u32 radix tables, and the two models'
/// 24-byte (first_key, slope, intercept) segment arrays. Index format v3
/// carries the payload in an optional checksummed section; AdoptView serves
/// it straight out of the mmap the way FingerprintTable::AdoptView does.

#include <span>
#include <vector>

#include "usi/suffix/sa_search.hpp"
#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Default PLA error bound: ±32 positions keeps the last-mile window inside
/// one or two SA cache lines' worth of entries while the segment count stays
/// a small fraction of n.
inline constexpr u32 kDefaultLearnedEpsilon = 32;

/// How suffix prefixes map onto u64 keys: \p bits per symbol, \p chars
/// symbols per key, packed most-significant-first and left-aligned
/// (remainder bits zero). Symbols must fit in \p bits — texts store the
/// compact alphabet, so ForSigma's choice always does.
struct KeyPacking {
  u32 bits = 8;
  u32 chars = 8;

  /// Densest packing for an alphabet of \p sigma symbols: bits =
  /// ceil(log2(sigma)) (min 1), chars = 64 / bits.
  static KeyPacking ForSigma(u32 sigma);
  /// ForSigma over the text's largest symbol + 1 (one linear scan).
  static KeyPacking ForText(const Text& text);
};

/// Packs the first min(kp.chars, n - pos) symbols of the suffix at \p pos
/// into a u64 (zero-padded); non-strictly monotone in SA order.
u64 PackSuffixKey(const Text& text, index_t pos, const KeyPacking& kp);

/// PLA-bounded last-mile search over a suffix array.
class LearnedSa {
 public:
  struct Options {
    /// Error bound ε on the model's position predictions (the fit verifies
    /// every point against the stored double-precision coefficients and
    /// widens the recorded ε if rounding ever exceeds the target). 0
    /// disables the model entirely: Build leaves it empty.
    u32 epsilon = kDefaultLearnedEpsilon;
  };

  LearnedSa() = default;

  /// One linear segment: pred(q) = intercept + slope * (q - first_key).
  /// Keys are offset per segment before the double conversion, so the
  /// mantissa loss on a 2^64-wide axis never exceeds slope * key_ulp —
  /// fractions of one position.
  struct Segment {
    u64 first_key;
    double slope;
    double intercept;
  };
  static_assert(sizeof(Segment) == 24);

  /// Fits the model over \p sa (one deterministic sequential pass: key
  /// extraction + greedy shrinking-cone segmentation + radix table). An
  /// empty SA, or epsilon == 0, leaves the model empty.
  void Build(const Text& text, std::span<const index_t> sa,
             const Options& options);
  void Build(const Text& text, std::span<const index_t> sa) {
    Build(text, sa, Options{});
  }

  /// Whether the model holds no segments (Build not run, disabled, or
  /// adopted from an absent section). FindInterval on an empty model falls
  /// through to plain FindSaInterval.
  bool empty() const { return lower_.empty(); }

  /// The SA interval of all suffixes with \p pattern as a prefix —
  /// byte-identical to FindSaInterval(text, sa, pattern) on every input.
  SaInterval FindInterval(const Text& text, std::span<const index_t> sa,
                          std::span<const Symbol> pattern) const;

  /// Batched FindInterval: out[i] = FindInterval(patterns[i]) for every i.
  /// In-flight searches advance in lock-step rounds with the SA probe and
  /// the probed suffix's text bytes software-prefetched one round ahead of
  /// their use (the AMAC discipline of FingerprintTable::VisitBatch), so a
  /// miss-heavy batch overlaps its cache misses instead of serializing them.
  void FindIntervalBatch(const Text& text, std::span<const index_t> sa,
                         std::span<const std::span<const Symbol>> patterns,
                         std::span<SaInterval> out) const;

  /// Serializes the model payload (header + radix table + segments) into a
  /// deterministic byte image — what the v3 learned section stores.
  std::vector<u8> Serialize() const;

  /// Adopts a serialized payload in place (no copy); \p data must stay
  /// 8-byte aligned and outlive the model (v3 keeps the mmap alive via
  /// UsiIndex::mapping_). Returns false on a malformed payload; the model
  /// is left empty in that case.
  bool AdoptView(const u8* data, u64 length);

  /// Recorded error bound (>= the requested ε only if double rounding
  /// forced a widening; in practice equal to it).
  u32 epsilon() const { return epsilon_; }

  /// Key packing the model was fit with (recorded in the payload header).
  u32 key_bits() const { return packing_.bits; }
  u32 key_chars() const { return packing_.chars; }

  /// Number of linear segments (lower + upper model).
  u64 num_segments() const { return lower_.size() + upper_.size(); }

  /// SA length the model was fit over.
  u64 fit_n() const { return n_; }

  /// Payload bytes a Serialize() image occupies (== referenced bytes for an
  /// adopted view).
  std::size_t SizeInBytes() const;

 private:
  /// Clamped evaluation of one model (its radix table + segments): a
  /// position in [0, n] near that model's boundary for query key \p q.
  u64 Predict(std::span<const u32> radix, std::span<const Segment> segments,
              u64 q) const;

  /// Expected window half-width used by the search paths (ε plus one slack
  /// position for the double-precision floor on evaluation).
  u64 Slack() const { return static_cast<u64>(epsilon_) + 1; }

  std::vector<u32> radix_lower_own_;
  std::vector<u32> radix_upper_own_;
  std::vector<Segment> lower_own_;
  std::vector<Segment> upper_own_;
  std::span<const u32> radix_lower_;
  std::span<const u32> radix_upper_;
  std::span<const Segment> lower_;
  std::span<const Segment> upper_;
  u64 n_ = 0;
  KeyPacking packing_;
  u64 min_key_ = 0;
  u64 max_key_ = 0;
  u32 shift_ = 0;  ///< bucket(q) = (q - min_key_) >> shift_.
  u32 epsilon_ = 0;
};

}  // namespace usi

#endif  // USI_SUFFIX_LEARNED_SA_HPP_
