#include "usi/suffix/suffix_array.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <numeric>
#include <type_traits>

#include "usi/parallel/thread_pool.hpp"

namespace usi {
namespace {

constexpr u32 kEmpty = ~u32{0};

/// Below this length the pool is ignored: the chunked passes cost more in
/// coordination than the scan saves.
constexpr u32 kParallelSaThreshold = u32{1} << 14;

// ---------------------------------------------------------------------------
// Workspace arena.
//
// Every recursion level needs type bits, bucket cursors and LMS scratch whose
// sizes halve level over level. A slab arena with stack-discipline rewind
// serves all of them: blocks never move (slabs are only appended, never
// reallocated), a level releases everything it took with one Rewind, and a
// deeper level reuses the space a shallower level just vacated — so levels
// below 0 run allocation-free once the slabs are warm.
// ---------------------------------------------------------------------------

class SaIsWorkspace {
 public:
  struct Mark {
    std::size_t slab;
    std::size_t used;
  };

  Mark Snapshot() const { return {slab_, used_}; }
  void Rewind(const Mark& mark) {
    slab_ = mark.slab;
    used_ = mark.used;
  }

  u64* AllocU64(std::size_t count) {
    while (true) {
      if (slab_ < slabs_.size()) {
        std::vector<u64>& slab = slabs_[slab_];
        if (slab.size() - used_ >= count) {
          u64* block = slab.data() + used_;
          used_ += count;
          return block;
        }
        ++slab_;
        used_ = 0;
        continue;
      }
      // Geometric slab growth keeps the number of slabs logarithmic; the
      // outer vector only moves the (small) inner vector objects, never the
      // slab storage itself, so previously returned pointers stay valid.
      const std::size_t grown =
          slabs_.empty() ? std::size_t{1024} : 2 * slabs_.back().size();
      slabs_.emplace_back(std::max(count, grown));
    }
  }

  /// u32 blocks are carved out of the u64 slabs (alignment is trivially
  /// satisfied); one pool serves both widths.
  u32* AllocU32(std::size_t count) {
    return reinterpret_cast<u32*>(AllocU64((count + 1) / 2));
  }

 private:
  std::vector<std::vector<u64>> slabs_;
  std::size_t slab_ = 0;
  std::size_t used_ = 0;
};

// ---------------------------------------------------------------------------
// Word-packed S/L type bits. Bit i is 1 iff suffix i is S-type; bit n (the
// virtual sentinel) is always 1. Tested inline during induction — no
// std::vector<bool> proxy objects on the hot path.
// ---------------------------------------------------------------------------

inline bool TypeIsS(const u64* bits, u32 i) {
  return (bits[i >> 6] >> (i & 63)) & 1;
}

inline void TypeSetS(u64* bits, u32 i) { bits[i >> 6] |= u64{1} << (i & 63); }

inline bool IsLmsAt(const u64* bits, u32 i) {
  // i >= 1 always (position 0 has no predecessor, the sentinel is pinned).
  return TypeIsS(bits, i) && !TypeIsS(bits, i - 1);
}

// ---------------------------------------------------------------------------
// Classification.
// ---------------------------------------------------------------------------

/// One fused backward pass: classifies every suffix (word-packed bits),
/// counts symbol occurrences into \p count (when kCount), and gathers the
/// LMS positions in *descending* text order into \p lms_rev (when kGather;
/// caller reverses). Returns the number of LMS positions (0 when !kGather —
/// the parallel gather recomputes it). The flags let the pool-parallel
/// level-0 path strip the pass down to pure classification.
template <typename SymT, bool kCount, bool kGather>
u32 ClassifySuffixes(const SymT* s, u32 n, u64* types, u32* count,
                     u32* lms_rev) {
  TypeSetS(types, n);  // Virtual sentinel is S-type.
  // Position n-1 precedes the sentinel, so it is always L-type.
  if (kCount) ++count[s[n - 1]];
  bool next_s = false;
  SymT next_sym = s[n - 1];
  u32 m = 0;
  // S-bits accumulate in a register and flush once per 64 positions (the
  // backward scan leaves a word exactly when i hits its lowest bit index),
  // instead of a read-modify-write per S-type suffix.
  u64 word = 0;
  for (u32 i = n - 1; i-- > 0;) {
    const SymT c = s[i];
    if (kCount) ++count[c];
    const bool cur_s = c < next_sym || (c == next_sym && next_s);
    if (cur_s) {
      word |= u64{1} << (i & 63);
    } else if (kGather && next_s) {
      lms_rev[m++] = i + 1;  // i is L, i+1 is S: i+1 is an LMS position.
    }
    if ((i & 63) == 0) {
      types[i >> 6] |= word;
      word = 0;
    }
    next_s = cur_s;
    next_sym = c;
  }
  return m;
}

/// Chunk-parallel symbol histogram for the level-0 byte text: per-worker
/// 256-entry counters merged in symbol order, so the totals match the
/// sequential count exactly.
void ParallelHistogram(const u8* s, u32 n, ThreadPool* pool, u32* count) {
  const unsigned workers = pool->thread_count();
  const std::size_t chunks =
      std::min<std::size_t>(4 * workers, (n + kParallelSaThreshold - 1) /
                                             kParallelSaThreshold);
  const std::size_t chunk_len = (n + chunks - 1) / chunks;
  std::vector<std::array<u32, 256>> partial(chunks);
  ParallelFor(pool, chunks, [&](std::size_t c, unsigned /*worker*/) {
    partial[c].fill(0);
    const std::size_t begin = c * chunk_len;
    const std::size_t end = std::min<std::size_t>(n, begin + chunk_len);
    for (std::size_t i = begin; i < end; ++i) ++partial[c][s[i]];
  });
  for (const std::array<u32, 256>& p : partial) {
    for (u32 c = 0; c < 256; ++c) count[c] += p[c];
  }
}

/// Chunk-parallel LMS gather (two-phase: count per chunk, prefix offsets,
/// write). Produces the positions in ascending text order — identical to the
/// sequential gather for every pool width.
u32 ParallelGatherLms(u32 n, const u64* types, ThreadPool* pool, u32* lms) {
  const unsigned workers = pool->thread_count();
  const std::size_t chunks =
      std::min<std::size_t>(4 * workers, (n + kParallelSaThreshold - 1) /
                                             kParallelSaThreshold);
  const std::size_t chunk_len = (n + chunks - 1) / chunks;
  std::vector<u32> chunk_count(chunks, 0);
  auto chunk_range = [&](std::size_t c) {
    // LMS candidates live in [1, n-1].
    const u32 begin = static_cast<u32>(std::max<std::size_t>(1, c * chunk_len));
    const u32 end = static_cast<u32>(std::min<std::size_t>(n, (c + 1) * chunk_len));
    return std::pair<u32, u32>(begin, end);
  };
  ParallelFor(pool, chunks, [&](std::size_t c, unsigned /*worker*/) {
    const auto [begin, end] = chunk_range(c);
    u32 local = 0;
    for (u32 i = begin; i < end; ++i) local += IsLmsAt(types, i);
    chunk_count[c] = local;
  });
  std::vector<u32> offset(chunks + 1, 0);
  for (std::size_t c = 0; c < chunks; ++c) {
    offset[c + 1] = offset[c] + chunk_count[c];
  }
  ParallelFor(pool, chunks, [&](std::size_t c, unsigned /*worker*/) {
    const auto [begin, end] = chunk_range(c);
    u32 out = offset[c];
    for (u32 i = begin; i < end; ++i) {
      if (IsLmsAt(types, i)) lms[out++] = i;
    }
  });
  return offset[chunks];
}

// ---------------------------------------------------------------------------
// Induced sort.
// ---------------------------------------------------------------------------

/// Seeds \p seeds at their bucket tails (right to left), then induces L-type
/// suffixes left-to-right from bucket heads and S-type suffixes
/// right-to-left from bucket tails. \p bucket_start is the immutable
/// exclusive prefix-sum layout (sigma + 1 entries); \p bucket_work (sigma
/// entries) is repaired between phases by copying the needed half out of it
/// — one memcpy each instead of the three prefix-sum walks per induce the
/// textbook version pays.
///
/// \p sa has n + 1 slots; slot 0 is pinned to the virtual sentinel suffix n
/// (lexicographically smallest), and the real suffixes occupy sa[1..n].
template <typename SymT>
void InduceSa(const SymT* s, u32 n, const u64* types, const u32* bucket_start,
              u32 sigma, u32* bucket_work, const u32* seeds, u32 m, u32* sa) {
  u32* body = sa + 1;
  std::fill(body, body + n, kEmpty);
  sa[0] = n;

  // Seed phase: bucket tails, walked right to left so that already-sorted
  // seeds land in ascending order within each bucket.
  std::memcpy(bucket_work, bucket_start + 1, sigma * sizeof(u32));
  for (u32 k = m; k-- > 0;) {
    const u32 pos = seeds[k];
    body[--bucket_work[s[pos]]] = pos;
  }

  // L phase: bucket heads. The virtual sentinel induces n-1 first (always
  // L-type: it precedes the smallest suffix). The predecessor index
  // pos - 1 wraps to >= n for both sentinel values (kEmpty and 0), so one
  // unsigned compare replaces the two explicit checks.
  std::memcpy(bucket_work, bucket_start, sigma * sizeof(u32));
  body[bucket_work[s[n - 1]]++] = n - 1;
  for (u32 k = 0; k < n; ++k) {
    const u32 prev = body[k] - 1;
    if (prev < n && !TypeIsS(types, prev)) {
      body[bucket_work[s[prev]]++] = prev;
    }
  }

  // S phase: bucket tails again.
  std::memcpy(bucket_work, bucket_start + 1, sigma * sizeof(u32));
  for (u32 k = n; k-- > 0;) {
    const u32 prev = body[k] - 1;
    if (prev < n && TypeIsS(types, prev)) {
      body[--bucket_work[s[prev]]] = prev;
    }
  }
}

// ---------------------------------------------------------------------------
// One SA-IS recursion level.
//
// Works over \p s (u8 at level 0 — the raw text, never widened — and u32 at
// the recursion levels) with a *virtual* sentinel at index n: nothing is
// copied or shifted, the sentinel suffix is pinned at sa[0] and its single
// L-induction is done explicitly. \p sa must have n + 1 slots. The reduced
// problem and its suffix array live inside the sa buffer itself (the
// classic SA-IS packing: reduced string in the top m slots, reduced SA in
// the bottom m + 1), so recursion adds no O(n) buffers beyond the arena.
// ---------------------------------------------------------------------------

template <typename SymT>
void SaIsLevel(const SymT* s, u32 n, u32 sigma, u32* sa, SaIsWorkspace& ws,
               ThreadPool* pool) {
  USI_DCHECK(n >= 1);
  const SaIsWorkspace::Mark level_mark = ws.Snapshot();

  // --- Classify + count + gather LMS ------------------------------------
  const std::size_t type_words = (static_cast<std::size_t>(n) >> 6) + 1;
  u64* types = ws.AllocU64(type_words);
  std::memset(types, 0, type_words * sizeof(u64));

  // buckets[0 .. sigma] becomes the immutable exclusive prefix sum
  // bucket_start; buckets[sigma + 1 .. 2 * sigma] is the working cursor
  // array InduceSa repairs by memcpy.
  u32* buckets = ws.AllocU32(2 * static_cast<std::size_t>(sigma) + 1);
  u32* bucket_start = buckets;
  u32* bucket_work = buckets + sigma + 1;
  std::memset(bucket_start, 0, (sigma + 1) * sizeof(u32));
  u32* count = bucket_start + 1;  // Counting shifted by one symbol, so the
                                  // in-place inclusive scan below yields the
                                  // exclusive prefix sums directly.

  u32* lms = ws.AllocU32(n / 2 + 1);
  u32 m;
  const bool parallel_level0 =
      pool != nullptr && pool->thread_count() > 1 && n >= kParallelSaThreshold;
  if constexpr (std::is_same_v<SymT, u8>) {
    if (parallel_level0) {
      // Histogram and LMS gathering run chunked on the pool; the backward
      // classification pass is stripped to type bits only.
      ParallelHistogram(s, n, pool, count);
      ClassifySuffixes<SymT, /*kCount=*/false, /*kGather=*/false>(
          s, n, types, count, lms);
      m = ParallelGatherLms(n, types, pool, lms);
    } else {
      m = ClassifySuffixes<SymT, /*kCount=*/true, /*kGather=*/true>(
          s, n, types, count, lms);
      std::reverse(lms, lms + m);
    }
  } else {
    (void)parallel_level0;
    m = ClassifySuffixes<SymT, /*kCount=*/true, /*kGather=*/true>(
        s, n, types, count, lms);
    std::reverse(lms, lms + m);
  }
  USI_DCHECK(2 * static_cast<std::size_t>(m) <= n);
  for (u32 c = 0; c < sigma; ++c) bucket_start[c + 1] += bucket_start[c];
  USI_DCHECK(bucket_start[sigma] == n);

  // --- First induce: sorts the LMS *substrings* --------------------------
  InduceSa(s, n, types, bucket_start, sigma, bucket_work, lms, m, sa);
  if (m == 0) {
    // No LMS positions (e.g. a non-increasing text): the L/S induction from
    // the sentinel alone already produced the full suffix array.
    ws.Rewind(level_mark);
    return;
  }

  // --- Name LMS substrings in induced order ------------------------------
  const SaIsWorkspace::Mark naming_mark = ws.Snapshot();
  u32* body = sa + 1;
  u32* lms_order = ws.AllocU32(m);
  {
    u32 found = 0;
    for (u32 k = 0; k < n && found < m; ++k) {
      const u32 pos = body[k];
      if (pos != 0 && IsLmsAt(types, pos)) lms_order[found++] = pos;
    }
    USI_DCHECK(found == m);
  }
  // Adjacent LMS positions are >= 2 apart, so pos >> 1 indexes names
  // injectively in half the space.
  u32* names = ws.AllocU32(static_cast<std::size_t>(n + 1) / 2);
  u32 next_name = 0;
  {
    u32 prev = kEmpty;
    for (u32 j = 0; j < m; ++j) {
      const u32 pos = lms_order[j];
      if (prev != kEmpty) {
        bool equal = true;
        for (u32 d = 0;; ++d) {
          const u32 a = prev + d;
          const u32 b = pos + d;
          if (a == n || b == n) {
            // Only one LMS substring can run into the sentinel; they differ.
            equal = false;
            break;
          }
          const bool a_lms = d > 0 && IsLmsAt(types, a);
          const bool b_lms = d > 0 && IsLmsAt(types, b);
          if (s[a] != s[b] || a_lms != b_lms) {
            equal = false;
            break;
          }
          if (a_lms) break;  // Both substrings ended together: equal.
        }
        if (!equal) ++next_name;
      }
      names[pos >> 1] = next_name;
      prev = pos;
    }
  }
  const u32 num_names = next_name + 1;

  // --- Order LMS suffixes, recursing while names repeat -------------------
  const u32* sorted_lms;
  if (num_names < m) {
    // Reduced string packed into the top m slots of sa; its SA into the
    // bottom m + 1 (2m + 1 <= n + 1 always, since m <= n / 2).
    u32* reduced = sa + (n + 1 - m);
    for (u32 j = 0; j < m; ++j) reduced[j] = names[lms[j] >> 1];
    ws.Rewind(naming_mark);  // lms_order + names feed the deeper level.
    SaIsLevel<u32>(reduced, m, num_names, sa, ws, nullptr);
    u32* mapped = ws.AllocU32(m);
    for (u32 j = 0; j < m; ++j) mapped[j] = lms[sa[1 + j]];
    sorted_lms = mapped;
  } else {
    // All names distinct: the induced order is already the suffix order.
    sorted_lms = lms_order;
  }

  // --- Final induce from sorted LMS suffixes ------------------------------
  InduceSa(s, n, types, bucket_start, sigma, bucket_work, sorted_lms, m, sa);
  ws.Rewind(level_mark);
}

}  // namespace

std::vector<index_t> BuildSuffixArray(const Text& text, ThreadPool* pool) {
  const std::size_t n = text.size();
  if (n == 0) return {};
  std::vector<index_t> sa(n + 1);
  SaIsWorkspace workspace;
  SaIsLevel<Symbol>(text.data(), static_cast<u32>(n), 256, sa.data(),
                    workspace, pool);
  USI_DCHECK(sa[0] == n);
  sa.erase(sa.begin());  // Drop the virtual sentinel suffix.
  return sa;
}

namespace {

/// The seed's textbook SA-IS core, preserved verbatim: u32-widened input,
/// std::vector<bool> type bits re-read in every induction step, three
/// prefix-sum bucket walks per induce, fresh allocations at every recursion
/// level. It is the baseline bench_buildpath measures BuildSuffixArray
/// against and a second oracle for the differential tests.
void SaIsReference(const std::vector<u32>& s, u32 sigma,
                   std::vector<u32>* sa) {
  const std::size_t n = s.size();
  sa->assign(n, kEmpty);
  if (n == 1) {
    (*sa)[0] = 0;
    return;
  }

  // Classify suffixes: S-type (true) iff s[i..] < s[i+1..].
  std::vector<bool> is_s(n);
  is_s[n - 1] = true;
  for (std::size_t i = n - 1; i-- > 0;) {
    is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
  }
  auto is_lms = [&](std::size_t i) { return i > 0 && is_s[i] && !is_s[i - 1]; };

  // Bucket boundaries by symbol.
  std::vector<u32> bucket_sizes(sigma, 0);
  for (u32 c : s) ++bucket_sizes[c];
  std::vector<u32> bucket_heads(sigma), bucket_tails(sigma);
  auto reset_buckets = [&]() {
    u32 offset = 0;
    for (u32 c = 0; c < sigma; ++c) {
      bucket_heads[c] = offset;
      offset += bucket_sizes[c];
      bucket_tails[c] = offset;  // one past the end
    }
  };

  // Induced sort: seed positions (LMS or sorted LMS), then induce L from the
  // left and S from the right.
  auto induce = [&](const std::vector<u32>& seeds) {
    std::fill(sa->begin(), sa->end(), kEmpty);
    reset_buckets();
    for (std::size_t k = seeds.size(); k-- > 0;) {
      const u32 pos = seeds[k];
      (*sa)[--bucket_tails[s[pos]]] = pos;
    }
    reset_buckets();
    for (std::size_t k = 0; k < n; ++k) {
      const u32 pos = (*sa)[k];
      if (pos != kEmpty && pos > 0 && !is_s[pos - 1]) {
        (*sa)[bucket_heads[s[pos - 1]]++] = pos - 1;
      }
    }
    reset_buckets();
    for (std::size_t k = n; k-- > 0;) {
      const u32 pos = (*sa)[k];
      if (pos != kEmpty && pos > 0 && is_s[pos - 1]) {
        (*sa)[--bucket_tails[s[pos - 1]]] = pos - 1;
      }
    }
  };

  // First pass: induce from unsorted LMS positions.
  std::vector<u32> lms_positions;
  for (std::size_t i = 1; i < n; ++i) {
    if (is_lms(i)) lms_positions.push_back(static_cast<u32>(i));
  }
  induce(lms_positions);

  // Name LMS substrings in the order they appear in the induced SA.
  std::vector<u32> lms_order;
  lms_order.reserve(lms_positions.size());
  for (std::size_t k = 0; k < n; ++k) {
    const u32 pos = (*sa)[k];
    if (pos != kEmpty && is_lms(pos)) lms_order.push_back(pos);
  }
  std::vector<u32> names(n, kEmpty);
  u32 next_name = 0;
  u32 prev = kEmpty;
  for (u32 pos : lms_order) {
    if (prev != kEmpty) {
      // Compare LMS substrings at prev and pos.
      bool equal = true;
      for (std::size_t d = 0;; ++d) {
        const bool prev_lms = d > 0 && is_lms(prev + d);
        const bool pos_lms = d > 0 && is_lms(pos + d);
        if (s[prev + d] != s[pos + d] || prev_lms != pos_lms) {
          equal = false;
          break;
        }
        if (prev_lms && pos_lms) break;
      }
      if (!equal) ++next_name;
    }
    names[pos] = next_name;
    prev = pos;
  }
  const u32 num_names = lms_order.empty() ? 0 : next_name + 1;

  // Order LMS suffixes, recursing when names repeat.
  std::vector<u32> sorted_lms;
  if (num_names < lms_positions.size()) {
    std::vector<u32> reduced;
    reduced.reserve(lms_positions.size());
    for (u32 pos : lms_positions) reduced.push_back(names[pos]);
    std::vector<u32> reduced_sa;
    SaIsReference(reduced, num_names, &reduced_sa);
    sorted_lms.reserve(lms_positions.size());
    for (u32 r : reduced_sa) sorted_lms.push_back(lms_positions[r]);
  } else {
    sorted_lms = lms_order;
  }
  induce(sorted_lms);
}

}  // namespace

std::vector<index_t> BuildSuffixArrayReference(const Text& text) {
  const std::size_t n = text.size();
  std::vector<index_t> sa(n);
  if (n == 0) return sa;
  // Shift symbols by one and append the unique smallest sentinel 0.
  std::vector<u32> s(n + 1);
  u32 max_symbol = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<u32>(text[i]) + 1;
    max_symbol = std::max(max_symbol, s[i]);
  }
  s[n] = 0;
  std::vector<u32> full_sa;
  SaIsReference(s, max_symbol + 1, &full_sa);
  // full_sa[0] is the sentinel suffix; drop it.
  USI_DCHECK(full_sa[0] == n);
  for (std::size_t i = 0; i < n; ++i) sa[i] = full_sa[i + 1];
  return sa;
}

std::vector<index_t> BuildSuffixArrayDoubling(const Text& text) {
  const std::size_t n = text.size();
  std::vector<index_t> sa(n);
  std::iota(sa.begin(), sa.end(), 0);
  if (n == 0) return sa;
  std::vector<i64> rank(n), next_rank(n);
  for (std::size_t i = 0; i < n; ++i) rank[i] = text[i];
  for (std::size_t k = 1;; k <<= 1) {
    auto pair_of = [&](index_t i) {
      const i64 second = (i + k < n) ? rank[i + k] : -1;
      return std::pair<i64, i64>(rank[i], second);
    };
    std::sort(sa.begin(), sa.end(), [&](index_t a, index_t b) {
      return pair_of(a) < pair_of(b);
    });
    next_rank[sa[0]] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      next_rank[sa[i]] =
          next_rank[sa[i - 1]] + (pair_of(sa[i - 1]) < pair_of(sa[i]) ? 1 : 0);
    }
    rank.swap(next_rank);
    if (rank[sa[n - 1]] == static_cast<i64>(n - 1)) break;
  }
  return sa;
}

std::vector<index_t> InverseSuffixArray(const std::vector<index_t>& sa) {
  std::vector<index_t> inverse(sa.size());
  for (std::size_t i = 0; i < sa.size(); ++i) inverse[sa[i]] = static_cast<index_t>(i);
  return inverse;
}

}  // namespace usi
