#include "usi/suffix/suffix_array.hpp"

#include <algorithm>
#include <numeric>

namespace usi {
namespace {

constexpr u32 kEmpty = ~u32{0};

/// Core SA-IS over an integer sequence \p s whose last element is a unique
/// smallest sentinel (value 0). Writes the full suffix array (including the
/// sentinel suffix at position 0) into \p sa.
void SaIs(const std::vector<u32>& s, u32 sigma, std::vector<u32>* sa) {
  const std::size_t n = s.size();
  sa->assign(n, kEmpty);
  if (n == 1) {
    (*sa)[0] = 0;
    return;
  }

  // Classify suffixes: S-type (true) iff s[i..] < s[i+1..].
  std::vector<bool> is_s(n);
  is_s[n - 1] = true;
  for (std::size_t i = n - 1; i-- > 0;) {
    is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
  }
  auto is_lms = [&](std::size_t i) { return i > 0 && is_s[i] && !is_s[i - 1]; };

  // Bucket boundaries by symbol.
  std::vector<u32> bucket_sizes(sigma, 0);
  for (u32 c : s) ++bucket_sizes[c];
  std::vector<u32> bucket_heads(sigma), bucket_tails(sigma);
  auto reset_buckets = [&]() {
    u32 offset = 0;
    for (u32 c = 0; c < sigma; ++c) {
      bucket_heads[c] = offset;
      offset += bucket_sizes[c];
      bucket_tails[c] = offset;  // one past the end
    }
  };

  // Induced sort: seed positions (LMS or sorted LMS), then induce L from the
  // left and S from the right.
  auto induce = [&](const std::vector<u32>& seeds) {
    std::fill(sa->begin(), sa->end(), kEmpty);
    reset_buckets();
    for (std::size_t k = seeds.size(); k-- > 0;) {
      const u32 pos = seeds[k];
      (*sa)[--bucket_tails[s[pos]]] = pos;
    }
    reset_buckets();
    for (std::size_t k = 0; k < n; ++k) {
      const u32 pos = (*sa)[k];
      if (pos != kEmpty && pos > 0 && !is_s[pos - 1]) {
        (*sa)[bucket_heads[s[pos - 1]]++] = pos - 1;
      }
    }
    reset_buckets();
    for (std::size_t k = n; k-- > 0;) {
      const u32 pos = (*sa)[k];
      if (pos != kEmpty && pos > 0 && is_s[pos - 1]) {
        (*sa)[--bucket_tails[s[pos - 1]]] = pos - 1;
      }
    }
  };

  // First pass: induce from unsorted LMS positions.
  std::vector<u32> lms_positions;
  for (std::size_t i = 1; i < n; ++i) {
    if (is_lms(i)) lms_positions.push_back(static_cast<u32>(i));
  }
  induce(lms_positions);

  // Name LMS substrings in the order they appear in the induced SA.
  std::vector<u32> lms_order;
  lms_order.reserve(lms_positions.size());
  for (std::size_t k = 0; k < n; ++k) {
    const u32 pos = (*sa)[k];
    if (pos != kEmpty && is_lms(pos)) lms_order.push_back(pos);
  }
  std::vector<u32> names(n, kEmpty);
  u32 next_name = 0;
  u32 prev = kEmpty;
  for (u32 pos : lms_order) {
    if (prev != kEmpty) {
      // Compare LMS substrings at prev and pos.
      bool equal = true;
      for (std::size_t d = 0;; ++d) {
        const bool prev_lms = d > 0 && is_lms(prev + d);
        const bool pos_lms = d > 0 && is_lms(pos + d);
        if (s[prev + d] != s[pos + d] || prev_lms != pos_lms) {
          equal = false;
          break;
        }
        if (prev_lms && pos_lms) break;
      }
      if (!equal) ++next_name;
    }
    names[pos] = next_name;
    prev = pos;
  }
  const u32 num_names = lms_order.empty() ? 0 : next_name + 1;

  // Order LMS suffixes, recursing when names repeat.
  std::vector<u32> sorted_lms;
  if (num_names < lms_positions.size()) {
    std::vector<u32> reduced;
    reduced.reserve(lms_positions.size());
    for (u32 pos : lms_positions) reduced.push_back(names[pos]);
    std::vector<u32> reduced_sa;
    SaIs(reduced, num_names, &reduced_sa);
    sorted_lms.reserve(lms_positions.size());
    for (u32 r : reduced_sa) sorted_lms.push_back(lms_positions[r]);
  } else {
    sorted_lms = lms_order;
  }
  induce(sorted_lms);
}

}  // namespace

std::vector<index_t> BuildSuffixArray(const Text& text) {
  const std::size_t n = text.size();
  std::vector<index_t> sa(n);
  if (n == 0) return sa;
  // Shift symbols by one and append the unique smallest sentinel 0.
  std::vector<u32> s(n + 1);
  u32 max_symbol = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<u32>(text[i]) + 1;
    max_symbol = std::max(max_symbol, s[i]);
  }
  s[n] = 0;
  std::vector<u32> full_sa;
  SaIs(s, max_symbol + 1, &full_sa);
  // full_sa[0] is the sentinel suffix; drop it.
  USI_DCHECK(full_sa[0] == n);
  for (std::size_t i = 0; i < n; ++i) sa[i] = full_sa[i + 1];
  return sa;
}

std::vector<index_t> BuildSuffixArrayDoubling(const Text& text) {
  const std::size_t n = text.size();
  std::vector<index_t> sa(n);
  std::iota(sa.begin(), sa.end(), 0);
  if (n == 0) return sa;
  std::vector<i64> rank(n), next_rank(n);
  for (std::size_t i = 0; i < n; ++i) rank[i] = text[i];
  for (std::size_t k = 1;; k <<= 1) {
    auto pair_of = [&](index_t i) {
      const i64 second = (i + k < n) ? rank[i + k] : -1;
      return std::pair<i64, i64>(rank[i], second);
    };
    std::sort(sa.begin(), sa.end(), [&](index_t a, index_t b) {
      return pair_of(a) < pair_of(b);
    });
    next_rank[sa[0]] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      next_rank[sa[i]] =
          next_rank[sa[i - 1]] + (pair_of(sa[i - 1]) < pair_of(sa[i]) ? 1 : 0);
    }
    rank.swap(next_rank);
    if (rank[sa[n - 1]] == static_cast<i64>(n - 1)) break;
  }
  return sa;
}

std::vector<index_t> InverseSuffixArray(const std::vector<index_t>& sa) {
  std::vector<index_t> inverse(sa.size());
  for (std::size_t i = 0; i < sa.size(); ++i) inverse[sa[i]] = static_cast<index_t>(i);
  return inverse;
}

}  // namespace usi
