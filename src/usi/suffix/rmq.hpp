#ifndef USI_SUFFIX_RMQ_HPP_
#define USI_SUFFIX_RMQ_HPP_

/// \file rmq.hpp
/// Range-minimum queries over an index_t array.
///
/// Used by the RMQ-based LCE backend: lce(i, j) = min LCP[rank_i+1 .. rank_j].
/// Hybrid layout: a sparse table over fixed-size block minima plus in-block
/// scans. Space is O(n/B log(n/B)) words instead of O(n log n); queries scan
/// at most 2B elements, which at B = 32 stays cache-resident and beats the
/// pure sparse table on construction time for big inputs.

#include <vector>

#include "usi/util/common.hpp"

namespace usi {

/// Immutable RMQ structure; copies block minima, references nothing.
class RangeMin {
 public:
  RangeMin() = default;

  /// Builds over \p values (copied into the structure's block summaries; the
  /// original vector must stay alive for queries).
  explicit RangeMin(const std::vector<index_t>& values);

  /// Minimum of values[l..r], inclusive; requires l <= r.
  index_t Min(std::size_t l, std::size_t r) const;

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const;

 private:
  static constexpr std::size_t kBlock = 32;

  const std::vector<index_t>* values_ = nullptr;
  std::vector<std::vector<index_t>> table_;  // table_[k][b]: min of 2^k blocks.
};

}  // namespace usi

#endif  // USI_SUFFIX_RMQ_HPP_
