#include "usi/suffix/lce.hpp"

#include <algorithm>

#include "usi/suffix/lcp_array.hpp"
#include "usi/suffix/suffix_array.hpp"

namespace usi {
namespace {

/// Finds the largest len in [0, limit] with eq(len) true, assuming eq is
/// monotone (true for a prefix of lengths). Exponential search first so the
/// cost is O(log lce) fragment comparisons, then binary search.
template <typename EqFn>
index_t MonotoneMaxTrue(index_t limit, EqFn eq) {
  if (limit == 0 || !eq(1)) return 0;
  index_t good = 1;
  index_t bad = limit + 1;  // Virtual mismatch just past the end.
  for (index_t probe = 2; probe <= limit; probe <<= 1) {
    if (eq(probe)) {
      good = probe;
    } else {
      bad = probe;
      break;
    }
    if (probe > limit / 2) break;  // Next shift would overflow past limit.
  }
  if (bad == limit + 1 && good < limit) {
    if (eq(limit)) return limit;
    bad = limit;
  }
  while (good + 1 < bad) {
    const index_t mid = good + (bad - good) / 2;
    if (eq(mid)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  return good;
}

}  // namespace

int LceOracle::CompareSuffixes(index_t i, index_t j) const {
  if (i == j) return 0;
  const index_t lce = Lce(i, j);
  const index_t len_i = n() - i;
  const index_t len_j = n() - j;
  if (lce >= len_i || lce >= len_j) {
    // One suffix is a prefix of the other; the shorter one is smaller.
    return len_i < len_j ? -1 : (len_i > len_j ? 1 : 0);
  }
  return text()[i + lce] < text()[j + lce] ? -1 : 1;
}

int LceOracle::CompareFragments(index_t i, index_t len_i, index_t j,
                                index_t len_j) const {
  const index_t lce = (i == j) ? std::max(len_i, len_j) : Lce(i, j);
  const index_t common = std::min({lce, len_i, len_j});
  if (common < len_i && common < len_j) {
    return text()[i + common] < text()[j + common] ? -1 : 1;
  }
  return len_i < len_j ? -1 : (len_i > len_j ? 1 : 0);
}

index_t NaiveLce::Lce(index_t i, index_t j) const {
  if (i == j) return n() - i;
  index_t k = 0;
  const index_t limit = n() - std::max(i, j);
  const Symbol* data = text().data();
  while (k < limit && data[i + k] == data[j + k]) ++k;
  return k;
}

RmqLce::RmqLce(const Text& text) : LceOracle(text) {
  owned_sa_ = BuildSuffixArray(text);
  owned_lcp_ = BuildLcpArray(text, owned_sa_);
  lcp_ = &owned_lcp_;
  BuildRank(owned_sa_);
  rmq_ = RangeMin(*lcp_);
}

RmqLce::RmqLce(const Text& text, const std::vector<index_t>& sa,
               const std::vector<index_t>& lcp)
    : LceOracle(text), lcp_(&lcp) {
  BuildRank(sa);
  rmq_ = RangeMin(*lcp_);
}

void RmqLce::BuildRank(const std::vector<index_t>& sa) {
  rank_ = InverseSuffixArray(sa);
}

index_t RmqLce::Lce(index_t i, index_t j) const {
  if (i == j) return n() - i;
  index_t ri = rank_[i];
  index_t rj = rank_[j];
  if (ri > rj) std::swap(ri, rj);
  return rmq_.Min(ri + 1, rj);
}

std::size_t RmqLce::SizeInBytes() const {
  return owned_sa_.capacity() * sizeof(index_t) +
         owned_lcp_.capacity() * sizeof(index_t) +
         rank_.capacity() * sizeof(index_t) + rmq_.SizeInBytes();
}

KrLce::KrLce(const Text& text, const KarpRabinHasher& hasher)
    : LceOracle(text), fps_(text, hasher) {}

index_t KrLce::Lce(index_t i, index_t j) const {
  if (i == j) return n() - i;
  const index_t limit = n() - std::max(i, j);
  return MonotoneMaxTrue(limit, [&](index_t len) {
    return fps_.Fragment(i, len) == fps_.Fragment(j, len);
  });
}

SampledKrLce::SampledKrLce(const Text& text, const KarpRabinHasher& hasher,
                           index_t sample_rate)
    : LceOracle(text), hasher_(&hasher), sample_rate_(sample_rate) {
  USI_CHECK(sample_rate >= 1);
  samples_.reserve(n() / sample_rate + 2);
  u64 fp = 0;
  for (index_t i = 0; i <= n(); ++i) {
    if (i % sample_rate == 0) samples_.push_back(fp);
    if (i < n()) fp = hasher.Append(fp, text[i]);
  }
  hasher.PowerOfBase(n());  // Pre-grow the power table for queries.
}

u64 SampledKrLce::PrefixFp(index_t len) const {
  const index_t k = len / sample_rate_;
  u64 fp = samples_[k];
  for (index_t i = k * sample_rate_; i < len; ++i) {
    fp = hasher_->Append(fp, text()[i]);
  }
  return fp;
}

u64 SampledKrLce::FragmentFp(index_t i, index_t len) const {
  return hasher_->SuffixOf(PrefixFp(i + len), PrefixFp(i), len);
}

index_t SampledKrLce::Lce(index_t i, index_t j) const {
  if (i == j) return n() - i;
  const index_t limit = n() - std::max(i, j);
  return MonotoneMaxTrue(limit, [&](index_t len) {
    return FragmentFp(i, len) == FragmentFp(j, len);
  });
}

}  // namespace usi
