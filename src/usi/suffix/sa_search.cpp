#include "usi/suffix/sa_search.hpp"

#include <algorithm>

namespace usi {
namespace {

/// Compares suffix text[pos..) against \p pattern, but only on the first
/// |pattern| characters: returns 0 if the pattern is a prefix of the suffix.
int ComparePrefix(const Text& text, index_t pos,
                  std::span<const Symbol> pattern) {
  const std::size_t n = text.size();
  for (std::size_t k = 0; k < pattern.size(); ++k) {
    if (pos + k >= n) return -1;  // Suffix exhausted: suffix < pattern.
    if (text[pos + k] != pattern[k]) {
      return text[pos + k] < pattern[k] ? -1 : 1;
    }
  }
  return 0;
}

}  // namespace

SaInterval FindSaInterval(const Text& text, std::span<const index_t> sa,
                          std::span<const Symbol> pattern) {
  if (pattern.empty()) {
    return SaInterval{0, static_cast<index_t>(sa.size()) - 1};
  }
  if (sa.empty() || pattern.size() > text.size()) return SaInterval{};
  // First suffix with prefix-compare >= 0.
  std::size_t lo = 0;
  std::size_t hi = sa.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ComparePrefix(text, sa[mid], pattern) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const std::size_t first = lo;
  // First suffix with prefix-compare > 0.
  hi = sa.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ComparePrefix(text, sa[mid], pattern) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (first >= lo) return SaInterval{};
  return SaInterval{static_cast<index_t>(first), static_cast<index_t>(lo - 1)};
}

std::vector<index_t> CollectOccurrences(const Text& text,
                                        std::span<const index_t> sa,
                                        std::span<const Symbol> pattern) {
  const SaInterval interval = FindSaInterval(text, sa, pattern);
  std::vector<index_t> occurrences;
  if (interval.IsEmpty()) return occurrences;
  occurrences.reserve(interval.Count());
  for (index_t k = interval.lb; k <= interval.rb; ++k) {
    occurrences.push_back(sa[k]);
  }
  return occurrences;
}

}  // namespace usi
