#include "usi/suffix/sa_search.hpp"

#include <algorithm>
#include <cstring>

namespace usi {
namespace {

/// Compares suffix text[pos..) against \p pattern, but only on the first
/// |pattern| characters: returns 0 if the pattern is a prefix of the suffix.
/// The in-bounds run is one contiguous memcmp; only a suffix shorter than
/// the pattern needs the exhaustion rule (shorter sorts below).
int ComparePrefix(const Text& text, index_t pos,
                  std::span<const Symbol> pattern) {
  const std::size_t avail = text.size() - pos;
  const std::size_t limit = std::min(pattern.size(), avail);
  const int cmp = std::memcmp(text.data() + pos, pattern.data(), limit);
  if (cmp != 0) return cmp < 0 ? -1 : 1;
  return limit < pattern.size() ? -1 : 0;  // Suffix exhausted: suffix < pattern.
}

}  // namespace

SaInterval FindSaInterval(const Text& text, std::span<const index_t> sa,
                          std::span<const Symbol> pattern) {
  if (sa.empty()) return SaInterval{};
  if (pattern.empty()) {
    return SaInterval{0, static_cast<index_t>(sa.size()) - 1};
  }
  if (pattern.size() > text.size()) return SaInterval{};
  // First suffix with prefix-compare >= 0.
  std::size_t lo = 0;
  std::size_t hi = sa.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ComparePrefix(text, sa[mid], pattern) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const std::size_t first = lo;
  // First suffix with prefix-compare > 0.
  hi = sa.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ComparePrefix(text, sa[mid], pattern) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (first >= lo) return SaInterval{};
  return SaInterval{static_cast<index_t>(first), static_cast<index_t>(lo - 1)};
}

std::vector<index_t> CollectOccurrences(const Text& text,
                                        std::span<const index_t> sa,
                                        std::span<const Symbol> pattern) {
  const SaInterval interval = FindSaInterval(text, sa, pattern);
  std::vector<index_t> occurrences;
  occurrences.reserve(interval.Count());
  VisitSaInterval(sa, interval, nullptr,
                  [&](index_t pos) { occurrences.push_back(pos); });
  return occurrences;
}

}  // namespace usi
