#ifndef USI_SUFFIX_SUFFIX_ARRAY_HPP_
#define USI_SUFFIX_SUFFIX_ARRAY_HPP_

/// \file suffix_array.hpp
/// Suffix-array construction.
///
/// BuildSuffixArray is a cache-conscious SA-IS (Nong, Zhang & Chan): O(n)
/// time over integer alphabets, the role the paper assigns to Farach's
/// algorithm [16]. The implementation specializes level 0 to the raw byte
/// text (no u32 widening), keeps the S/L type classification word-packed,
/// fuses classification with bucket counting, repairs bucket cursors by
/// copying from an immutable prefix-sum array instead of recomputing it, and
/// threads one reusable slab arena through the recursion so levels below 0
/// perform near-zero heap allocations. When a ThreadPool is supplied, the
/// level-0 symbol histogram and LMS-position gathering run chunk-parallel;
/// the result is identical for every pool width (and to the sequential run).
///
/// BuildSuffixArrayReference is the seed's textbook SA-IS, kept verbatim as
/// the differential-test oracle and as the baseline the bench_buildpath
/// "seed vs new" comparison measures against. BuildSuffixArrayDoubling is
/// the O(n log^2 n) prefix-doubling algorithm of Manber & Myers [17]; it is
/// an independently-derived oracle for the property tests and an ablation
/// subject.

#include <vector>

#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

class ThreadPool;

/// Builds the suffix array of \p text in O(n) (SA-IS). SA[i] is the starting
/// position of the i-th lexicographically smallest suffix; the empty suffix
/// is not included, so the result has exactly text.size() entries. \p pool
/// (may be null) parallelizes the level-0 histogram and LMS gathering; the
/// output does not depend on it.
std::vector<index_t> BuildSuffixArray(const Text& text,
                                      ThreadPool* pool = nullptr);

/// The seed's textbook SA-IS (u32-widened input, std::vector<bool> type
/// bits, per-level allocations). Oracle + bench baseline only — use
/// BuildSuffixArray everywhere else.
std::vector<index_t> BuildSuffixArrayReference(const Text& text);

/// Prefix-doubling construction (O(n log^2 n)); test oracle / ablation.
std::vector<index_t> BuildSuffixArrayDoubling(const Text& text);

/// Inverse permutation: rank[SA[i]] = i.
std::vector<index_t> InverseSuffixArray(const std::vector<index_t>& sa);

}  // namespace usi

#endif  // USI_SUFFIX_SUFFIX_ARRAY_HPP_
