#ifndef USI_SUFFIX_SUFFIX_ARRAY_HPP_
#define USI_SUFFIX_SUFFIX_ARRAY_HPP_

/// \file suffix_array.hpp
/// Suffix-array construction.
///
/// BuildSuffixArray is SA-IS (Nong, Zhang & Chan): O(n) time over integer
/// alphabets, the role the paper assigns to Farach's algorithm [16].
/// BuildSuffixArrayDoubling is the O(n log^2 n) prefix-doubling algorithm of
/// Manber & Myers [17]; it is kept as an independently-derived oracle for the
/// property tests and as an ablation subject.

#include <vector>

#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Builds the suffix array of \p text in O(n) (SA-IS). SA[i] is the starting
/// position of the i-th lexicographically smallest suffix; the empty suffix
/// is not included, so the result has exactly text.size() entries.
std::vector<index_t> BuildSuffixArray(const Text& text);

/// Prefix-doubling construction (O(n log^2 n)); test oracle / ablation.
std::vector<index_t> BuildSuffixArrayDoubling(const Text& text);

/// Inverse permutation: rank[SA[i]] = i.
std::vector<index_t> InverseSuffixArray(const std::vector<index_t>& sa);

}  // namespace usi

#endif  // USI_SUFFIX_SUFFIX_ARRAY_HPP_
