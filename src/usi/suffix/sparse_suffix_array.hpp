#ifndef USI_SUFFIX_SPARSE_SUFFIX_ARRAY_HPP_
#define USI_SUFFIX_SPARSE_SUFFIX_ARRAY_HPP_

/// \file sparse_suffix_array.hpp
/// Sparse suffix array + sparse LCP (Kärkkäinen & Ukkonen [35]).
///
/// Approximate-Top-K (Section VI, Step 2) builds, per sampling round, the
/// lexicographic order of the ~n/s suffixes starting at the sampled
/// positions, with the adjacent-LCP array; both via LCE queries. The paper
/// sorts with in-place mergesort to bound extra space; we sort with
/// std::sort (introsort) whose O(log n) stack is equally immaterial — the
/// LCE oracle dominates the space budget either way.

#include <vector>

#include "usi/suffix/lce.hpp"
#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Suffix order and adjacent LCPs for an arbitrary subset of text positions.
struct SparseSuffixIndex {
  std::vector<index_t> positions;  ///< Sampled positions, lex-sorted by suffix.
  std::vector<index_t> lcp;        ///< lcp[0] = 0; lcp[k] = LCE of k-1 and k.

  std::size_t SizeInBytes() const {
    return positions.capacity() * sizeof(index_t) +
           lcp.capacity() * sizeof(index_t);
  }
};

/// Sorts \p sample_positions by their suffixes and computes the sparse LCP
/// array. ~O((n/s) log(n/s)) suffix comparisons, each one LCE query.
SparseSuffixIndex BuildSparseSuffixIndex(std::vector<index_t> sample_positions,
                                         const LceOracle& lce);

}  // namespace usi

#endif  // USI_SUFFIX_SPARSE_SUFFIX_ARRAY_HPP_
