#ifndef USI_SUFFIX_LCP_ARRAY_HPP_
#define USI_SUFFIX_LCP_ARRAY_HPP_

/// \file lcp_array.hpp
/// LCP-array construction (Kasai et al. [30], as cited in Section III).
///
/// LCP[0] = 0 and LCP[j] = |longest common prefix of suffixes SA[j-1] and
/// SA[j]| for j > 0 — the exact convention of the paper.

#include <vector>

#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Builds the LCP array from \p text and its suffix array in O(n).
std::vector<index_t> BuildLcpArray(const Text& text,
                                   const std::vector<index_t>& sa);

}  // namespace usi

#endif  // USI_SUFFIX_LCP_ARRAY_HPP_
