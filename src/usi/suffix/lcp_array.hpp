#ifndef USI_SUFFIX_LCP_ARRAY_HPP_
#define USI_SUFFIX_LCP_ARRAY_HPP_

/// \file lcp_array.hpp
/// LCP-array construction (Kasai et al. [30], as cited in Section III).
///
/// LCP[0] = 0 and LCP[j] = |longest common prefix of suffixes SA[j-1] and
/// SA[j]| for j > 0 — the exact convention of the paper.

#include <vector>

#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

class ThreadPool;

/// Builds the LCP array from \p text and its suffix array in O(n).
///
/// With a pool, text positions are split into contiguous chunks scanned in
/// parallel. Kasai's carried h is only a lower bound on the next LCP value
/// (every entry is still verified by direct comparison), so restarting each
/// chunk at h = 0 yields byte-identical output to the sequential scan; each
/// chunk merely pays one cold re-match at its first position.
std::vector<index_t> BuildLcpArray(const Text& text,
                                   const std::vector<index_t>& sa,
                                   ThreadPool* pool = nullptr);

}  // namespace usi

#endif  // USI_SUFFIX_LCP_ARRAY_HPP_
