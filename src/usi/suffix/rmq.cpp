#include "usi/suffix/rmq.hpp"

#include <algorithm>

namespace usi {

RangeMin::RangeMin(const std::vector<index_t>& values) : values_(&values) {
  const std::size_t num_blocks = (values.size() + kBlock - 1) / kBlock;
  if (num_blocks == 0) return;
  table_.emplace_back(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    index_t m = kInvalidIndex;
    const std::size_t end = std::min(values.size(), (b + 1) * kBlock);
    for (std::size_t i = b * kBlock; i < end; ++i) m = std::min(m, values[i]);
    table_[0][b] = m;
  }
  for (std::size_t k = 1; (std::size_t{1} << k) <= num_blocks; ++k) {
    const std::size_t span = std::size_t{1} << k;
    table_.emplace_back(num_blocks - span + 1);
    for (std::size_t b = 0; b + span <= num_blocks; ++b) {
      table_[k][b] = std::min(table_[k - 1][b], table_[k - 1][b + span / 2]);
    }
  }
}

index_t RangeMin::Min(std::size_t l, std::size_t r) const {
  USI_DCHECK(values_ != nullptr && l <= r && r < values_->size());
  const std::vector<index_t>& values = *values_;
  const std::size_t lb = l / kBlock;
  const std::size_t rb = r / kBlock;
  index_t result = kInvalidIndex;
  if (lb == rb) {
    for (std::size_t i = l; i <= r; ++i) result = std::min(result, values[i]);
    return result;
  }
  // Head and tail partial blocks.
  for (std::size_t i = l; i < (lb + 1) * kBlock; ++i) {
    result = std::min(result, values[i]);
  }
  for (std::size_t i = rb * kBlock; i <= r; ++i) {
    result = std::min(result, values[i]);
  }
  // Full blocks in between via the sparse table.
  if (lb + 1 <= rb - 1) {
    const std::size_t from = lb + 1;
    const std::size_t to = rb - 1;
    std::size_t k = 0;
    while ((std::size_t{1} << (k + 1)) <= to - from + 1) ++k;
    result = std::min(result, table_[k][from]);
    result = std::min(result, table_[k][to - (std::size_t{1} << k) + 1]);
  }
  return result;
}

std::size_t RangeMin::SizeInBytes() const {
  std::size_t total = 0;
  for (const auto& level : table_) total += level.capacity() * sizeof(index_t);
  return total;
}

}  // namespace usi
