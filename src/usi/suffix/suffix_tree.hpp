#ifndef USI_SUFFIX_SUFFIX_TREE_HPP_
#define USI_SUFFIX_SUFFIX_TREE_HPP_

/// \file suffix_tree.hpp
/// Online (Ukkonen [39]) suffix tree.
///
/// The static pipeline uses the enhanced suffix array as its suffix-tree
/// view; this pointer-based tree exists for the two places that genuinely
/// need a tree: the append-only DynamicUsi extension of Section X (Ukkonen
/// is the update mechanism the paper proposes) and cross-validation of the
/// ESA node enumeration in the property tests.
///
/// The tree is built without a terminating sentinel, so some suffixes may end
/// implicitly mid-edge ("pending" suffixes). Occurrence counting accounts for
/// them explicitly: every leaf is one occurrence, and each pending suffix
/// that starts with the pattern adds one more. Subtree leaf counts are
/// maintained incrementally on each leaf insertion by walking parent links —
/// the O(depth) cost Section X acknowledges.

#include <span>
#include <vector>

#include "usi/suffix/esa.hpp"
#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Growable suffix tree over an internally stored text.
class SuffixTree {
 public:
  SuffixTree();

  /// Builds the tree of \p text by streaming it through Extend().
  explicit SuffixTree(const Text& text);

  /// Appends one letter and restores the suffix-tree invariant.
  void Extend(Symbol c);

  /// Length of the indexed text.
  index_t size() const { return static_cast<index_t>(text_.size()); }

  /// The indexed text.
  const Text& text() const { return text_; }

  /// Number of occurrences of \p pattern in the indexed text (exact,
  /// including occurrences that currently end implicitly).
  index_t CountOccurrences(std::span<const Symbol> pattern) const;

  /// Start positions of all occurrences of \p pattern (exact, unsorted).
  /// O(m + occ) once the locus is found.
  std::vector<index_t> CollectOccurrences(std::span<const Symbol> pattern) const;

  /// As CollectOccurrences, writing into \p out (cleared first) and using
  /// \p stack as traversal scratch — zero heap allocations once both have
  /// warmed to the workload's occurrence counts. The serving tier's
  /// delta-overlay probe runs on this form.
  void CollectOccurrencesInto(std::span<const Symbol> pattern,
                              std::vector<index_t>& out,
                              std::vector<index_t>& stack) const;

  /// Whether \p pattern occurs at least once.
  bool Contains(std::span<const Symbol> pattern) const {
    return CountOccurrences(pattern) > 0;
  }

  /// Start positions of the suffixes that still end implicitly (the last
  /// `remaining` positions of the text). DynamicUsi needs these to correct
  /// frequencies during appends.
  index_t PendingSuffixCount() const { return remaining_; }

  /// Summary of an explicit node for cross-checks against the ESA view.
  struct NodeSummary {
    index_t depth;         ///< sd(v).
    index_t parent_depth;  ///< sd(parent(v)).
    index_t frequency;     ///< Occurrences of str(v) in the text.

    auto operator<=>(const NodeSummary&) const = default;
  };

  /// Collects (depth, parent depth, frequency) for every explicit node with
  /// depth > 0, counting pending suffixes into the frequencies. On a text
  /// whose last letter is unique this matches the ESA enumeration exactly.
  std::vector<NodeSummary> CollectNodeSummaries() const;

  /// Number of explicit tree nodes (diagnostics).
  std::size_t NodeCount() const { return nodes_.size(); }

  /// Heap footprint in bytes.
  std::size_t SizeInBytes() const;

 private:
  static constexpr index_t kNoNode = kInvalidIndex;
  static constexpr index_t kOpenEnd = kInvalidIndex;

  struct Node {
    index_t start = 0;          ///< Edge label = text[start .. EndOf(node)).
    index_t end = kOpenEnd;     ///< Exclusive end; kOpenEnd tracks text size.
    index_t link = kNoNode;     ///< Suffix link.
    index_t parent = kNoNode;   ///< Parent node (maintained across splits).
    index_t leaves = 0;         ///< Leaves in this subtree.
    index_t suffix_start = kInvalidIndex;  ///< Leaf's suffix position.
    std::vector<std::pair<Symbol, index_t>> children;  ///< Sorted by symbol.
  };

  index_t EdgeEnd(const Node& node) const {
    return node.end == kOpenEnd ? static_cast<index_t>(text_.size()) : node.end;
  }

  index_t EdgeLength(const Node& node) const {
    return EdgeEnd(node) - node.start;
  }

  index_t ChildOf(index_t node, Symbol c) const;
  void SetChild(index_t node, Symbol c, index_t child);
  index_t NewNode(index_t start, index_t end, index_t parent);
  void AddLeafCountUpwards(index_t node);

  /// Walks down from the root along \p pattern. Returns the node whose
  /// subtree holds all occurrences, or kNoNode if the pattern is absent.
  index_t FindLocus(std::span<const Symbol> pattern) const;

  Text text_;
  std::vector<Node> nodes_;
  index_t root_;

  // Ukkonen's active point.
  index_t active_node_;
  index_t active_edge_ = 0;  // Index into text_ of the edge's first symbol.
  index_t active_length_ = 0;
  index_t remaining_ = 0;
};

}  // namespace usi

#endif  // USI_SUFFIX_SUFFIX_TREE_HPP_
