#include "usi/suffix/learned_sa.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

namespace usi {
namespace {

/// Payload magic ("LSA1").
constexpr u32 kPayloadMagic = 0x4C534131;

/// Radix-table sizing: enough buckets that a bucket holds only a handful of
/// segments, capped so the table never dominates the model's footprint.
constexpr u32 kMaxRadixBits = 18;

/// Serialized payload header. Written and read raw; every field is
/// fixed-width and the struct is padded to a multiple of 8 so the segment
/// array that follows the (8-padded) radix table stays 8-byte aligned in
/// the mapped file.
struct PayloadHeader {
  u32 magic = kPayloadMagic;
  u32 epsilon = 0;
  u64 n = 0;
  u64 num_radix = 0;       ///< Shared by both radix tables.
  u64 num_segments = 0;    ///< Lower (first-occurrence) model.
  u64 min_key = 0;
  u64 max_key = 0;
  u32 shift = 0;
  u32 key_bits = 0;            ///< Bits per packed symbol; chars = 64 / bits.
  u64 num_upper_segments = 0;  ///< Upper (end-of-run) model.
};
static_assert(sizeof(PayloadHeader) == 64);

u64 ToBigEndian64(u64 raw) {
  if constexpr (std::endian::native == std::endian::little) {
    return __builtin_bswap64(raw);
  }
  return raw;
}

/// Pack of the first min(kp.chars, m) pattern symbols, plus the key of the
/// largest packed prefix still starting with the pattern: for
/// m >= kp.chars both collapse to one key; for shorter patterns the
/// pattern owns the key range [qlo, qhi] (its unset low bits run from
/// all-zero to all-one). A pattern symbol outside the packed alphabet
/// (possible — queries are arbitrary bytes, the text is compact-coded)
/// matches nothing; both seeds collapse onto the position past every
/// suffix sharing the preceding prefix, and the last-mile search confirms
/// the empty interval there.
void PatternKeyRange(std::span<const Symbol> pattern, const KeyPacking& kp,
                     u64* qlo, u64* qhi) {
  const u32 max_symbol = (u32{1} << kp.bits) - 1;
  const std::size_t take = std::min<std::size_t>(kp.chars, pattern.size());
  u64 key = 0;
  for (std::size_t j = 0; j < take; ++j) {
    if (pattern[j] > max_symbol) {
      if (j == 0) {
        *qlo = *qhi = ~u64{0};
        return;
      }
      const u32 rem = 64 - kp.bits * static_cast<u32>(j);
      *qlo = *qhi = (key << rem) | ((u64{1} << rem) - 1);
      return;
    }
    key = (key << kp.bits) | pattern[j];
  }
  const u32 rem = 64 - kp.bits * static_cast<u32>(take);
  key <<= rem;
  *qlo = key;
  *qhi = take == kp.chars ? key : key | ((u64{1} << rem) - 1);
}

/// Sign of suffix text[pos..) vs \p pattern on the first m characters
/// (0 = the pattern is a prefix of the suffix; an exhausted suffix sorts
/// below the pattern), plus the matched prefix length. The first \p skip
/// characters are known equal and never re-read (llcp/rlcp contract); the
/// rest compares word-at-a-time, locating the first mismatching byte with
/// one XOR + count-trailing-zeros instead of a byte loop.
struct SuffixCmp {
  int sign;
  std::size_t lcp;
};

SuffixCmp CompareSuffix(const Symbol* text, std::size_t n, index_t pos,
                        const Symbol* pattern, std::size_t m,
                        std::size_t skip) {
  const Symbol* s = text + pos;
  const std::size_t limit = std::min<std::size_t>(m, n - pos);
  std::size_t k = skip;
  while (k + 8 <= limit) {
    u64 a;
    u64 b;
    std::memcpy(&a, s + k, 8);
    std::memcpy(&b, pattern + k, 8);
    if (a != b) {
      const u64 diff = a ^ b;
      const std::size_t byte =
          std::endian::native == std::endian::little
              ? static_cast<std::size_t>(std::countr_zero(diff)) >> 3
              : static_cast<std::size_t>(std::countl_zero(diff)) >> 3;
      k += byte;
      return {s[k] < pattern[k] ? -1 : 1, k};
    }
    k += 8;
  }
  for (; k < limit; ++k) {
    if (s[k] != pattern[k]) return {s[k] < pattern[k] ? -1 : 1, k};
  }
  if (k < m) return {-1, k};  // Suffix exhausted: suffix < pattern.
  return {0, m};
}

/// Finds the first i in [0, sa_n] with CompareSuffix(sa[i]).sign >= t
/// (t = 0 locates lb, t = 1 locates rb + 1), starting from the predicted
/// window [wlo, whi]. The window edges are verified first — galloping
/// outward with doubling steps when the boundary lies outside (the ε
/// contract's escape hatch) — then a Manber-Myers binary search with
/// llcp/rlcp skipping finishes inside the bracket.
std::size_t SearchBoundary(const Symbol* text, std::size_t n,
                           const index_t* sa, std::size_t sa_n,
                           const Symbol* pattern, std::size_t m, int t,
                           u64 wlo, u64 whi) {
  std::size_t lo = static_cast<std::size_t>(std::min<u64>(wlo, sa_n));
  std::size_t hi = static_cast<std::size_t>(std::min<u64>(whi, sa_n));
  std::size_t llcp = 0;
  std::size_t rlcp = 0;
  bool right_ok = hi == sa_n;

  // Left edge: establish lo == 0 or sa[lo-1] left of the boundary.
  u64 step = 1;
  while (lo > 0) {
    const SuffixCmp c = CompareSuffix(text, n, sa[lo - 1], pattern, m, 0);
    if (c.sign < t) {
      llcp = c.lcp;
      break;
    }
    // The probe is right of the boundary: it becomes the right fence and
    // the window slides left, doubling.
    hi = lo - 1;
    rlcp = c.lcp;
    right_ok = true;
    lo = lo > step ? lo - step : 0;
    step <<= 1;
  }
  // Right edge: establish hi == sa_n or sa[hi] right of the boundary.
  step = 1;
  while (!right_ok && hi < sa_n) {
    const SuffixCmp c = CompareSuffix(text, n, sa[hi], pattern, m, 0);
    if (c.sign >= t) {
      rlcp = c.lcp;
      break;
    }
    lo = hi + 1;
    llcp = c.lcp;
    hi = std::min<std::size_t>(sa_n, hi + step);
    step <<= 1;
  }

  // Bracketed last mile: probes start at min(llcp, rlcp) matched
  // characters — any suffix between two fences shares at least that prefix
  // with the pattern, so those bytes are never re-read.
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const SuffixCmp c =
        CompareSuffix(text, n, sa[mid], pattern, m, std::min(llcp, rlcp));
    if (c.sign < t) {
      lo = mid + 1;
      llcp = c.lcp;
    } else {
      hi = mid;
      rlcp = c.lcp;
    }
  }
  return lo;
}

}  // namespace

KeyPacking KeyPacking::ForSigma(u32 sigma) {
  const u32 bits = std::max<u32>(
      1, static_cast<u32>(std::bit_width(std::max(sigma, 1u) - 1)));
  return KeyPacking{bits, 64 / bits};
}

KeyPacking KeyPacking::ForText(const Text& text) {
  Symbol max_symbol = 0;
  for (const Symbol c : text) max_symbol = std::max(max_symbol, c);
  return ForSigma(static_cast<u32>(max_symbol) + 1);
}

u64 PackSuffixKey(const Text& text, index_t pos, const KeyPacking& kp) {
  const std::size_t n = text.size();
  USI_DCHECK(pos < n);
  if (kp.bits == 8 && pos + 8 <= n) {
    u64 raw;
    std::memcpy(&raw, text.data() + pos, 8);
    return ToBigEndian64(raw);
  }
  const std::size_t take = std::min<std::size_t>(kp.chars, n - pos);
  u64 key = 0;
  for (std::size_t j = 0; j < take; ++j) {
    USI_DCHECK(text[pos + j] < (u32{1} << kp.bits));
    key = (key << kp.bits) | text[pos + j];
  }
  return key << (64 - kp.bits * static_cast<u32>(take));
}

namespace {

/// Greedy shrinking-cone PLA fitter. The cone keeps the feasible slope
/// interval of a line anchored at the open segment's first point; a point
/// that empties it closes the segment and anchors the next one. Closing
/// verifies every covered point against the STORED coefficients with the
/// same arithmetic Predict uses, so the recorded ε stays honest even where
/// double rounding nudges a prediction past the cone's bound.
class ConeFitter {
 public:
  explicit ConeFitter(double eps) : eps_(eps) {}

  void Add(u64 x, u64 y) {
    if (seg_pts_.empty()) {
      Open(x, y);
      return;
    }
    const Pt& p0 = seg_pts_.front();
    const double dx = static_cast<double>(x - p0.x);
    const double dy = static_cast<double>(y) - static_cast<double>(p0.y);
    const double nlo = std::max(slope_lo_, (dy - eps_) / dx);
    const double nhi = std::min(slope_hi_, (dy + eps_) / dx);
    if (nlo > nhi) {
      Close();
      Open(x, y);
    } else {
      slope_lo_ = nlo;
      slope_hi_ = nhi;
      seg_pts_.push_back({x, y});
    }
  }

  void Finish() {
    if (!seg_pts_.empty()) Close();
  }

  std::vector<LearnedSa::Segment>& segments() { return segments_; }
  double max_err() const { return max_err_; }

 private:
  struct Pt {
    u64 x;
    u64 y;
  };

  void Open(u64 x, u64 y) {
    seg_pts_.assign(1, Pt{x, y});
    slope_lo_ = -std::numeric_limits<double>::infinity();
    slope_hi_ = std::numeric_limits<double>::infinity();
  }

  void Close() {
    const Pt& p0 = seg_pts_.front();
    const double slope =
        seg_pts_.size() == 1 ? 0.0 : 0.5 * (slope_lo_ + slope_hi_);
    const LearnedSa::Segment seg{p0.x, slope, static_cast<double>(p0.y)};
    for (const Pt& pt : seg_pts_) {
      const double pred =
          seg.intercept + seg.slope * static_cast<double>(pt.x - seg.first_key);
      const double err = std::fabs(pred - static_cast<double>(pt.y));
      if (err > max_err_) max_err_ = err;
    }
    segments_.push_back(seg);
    seg_pts_.clear();
  }

  double eps_;
  std::vector<Pt> seg_pts_;  // Points of the open segment, for verification.
  double slope_lo_ = 0;
  double slope_hi_ = 0;
  double max_err_ = 0;
  std::vector<LearnedSa::Segment> segments_;
};

/// radix[b] = first segment whose anchor key lands in bucket >= b, so a
/// lookup binary-searches only within one bucket's segments.
std::vector<u32> BuildRadix(const std::vector<LearnedSa::Segment>& segments,
                            u64 min_key, u32 shift, u64 num_buckets) {
  std::vector<u32> radix(static_cast<std::size_t>(num_buckets) + 1, 0);
  u64 b = 0;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const u64 sb = (segments[s].first_key - min_key) >> shift;
    while (b <= sb) radix[b++] = static_cast<u32>(s);
  }
  const u32 nseg = static_cast<u32>(segments.size());
  while (b <= num_buckets) radix[b++] = nseg;
  return radix;
}

}  // namespace

void LearnedSa::Build(const Text& text, std::span<const index_t> sa,
                      const Options& options) {
  *this = LearnedSa();
  if (sa.empty() || options.epsilon == 0) return;
  n_ = sa.size();
  epsilon_ = options.epsilon;
  packing_ = KeyPacking::ForText(text);
  const double eps = static_cast<double>(options.epsilon);

  // One deterministic pass streams the distinct keys off the SA into both
  // fits: the lower model gets (key, first occurrence), the upper model
  // gets (key, first position after the key's run) — both x sequences are
  // identical, so the two models share the radix geometry below.
  ConeFitter lower_fit(eps);
  ConeFitter upper_fit(eps);
  u64 prev_key = 0;
  bool have_prev = false;
  for (u64 i = 0; i < n_; ++i) {
    const u64 key = PackSuffixKey(text, sa[i], packing_);
    USI_DCHECK(!have_prev || key >= prev_key);
    if (have_prev && key == prev_key) continue;
    if (have_prev) upper_fit.Add(prev_key, i);
    lower_fit.Add(key, i);
    prev_key = key;
    have_prev = true;
  }
  upper_fit.Add(prev_key, n_);
  lower_fit.Finish();
  upper_fit.Finish();
  lower_own_ = std::move(lower_fit.segments());
  upper_own_ = std::move(upper_fit.segments());
  const double max_err = std::max(lower_fit.max_err(), upper_fit.max_err());
  if (max_err > static_cast<double>(epsilon_)) {
    epsilon_ = static_cast<u32>(std::min<double>(
        std::ceil(max_err), std::numeric_limits<u32>::max()));
  }
  min_key_ = lower_own_.front().first_key;
  max_key_ = prev_key;

  // Shared radix root: bucket(q) = (q - min_key) >> shift over the
  // populated key range, one table per model.
  const u64 range = max_key_ - min_key_;
  const u32 range_bits = static_cast<u32>(std::bit_width(range | 1));
  const u32 want_bits = std::min<u32>(
      kMaxRadixBits,
      static_cast<u32>(std::bit_width(
          std::max(lower_own_.size(), upper_own_.size()))) + 2);
  const u32 bits = std::min(std::max(want_bits, 1u), range_bits);
  shift_ = range_bits - bits;
  const u64 num_buckets = (range >> shift_) + 1;
  radix_lower_own_ = BuildRadix(lower_own_, min_key_, shift_, num_buckets);
  radix_upper_own_ = BuildRadix(upper_own_, min_key_, shift_, num_buckets);

  radix_lower_ = radix_lower_own_;
  radix_upper_ = radix_upper_own_;
  lower_ = lower_own_;
  upper_ = upper_own_;
}

u64 LearnedSa::Predict(std::span<const u32> radix,
                       std::span<const Segment> segments, u64 q) const {
  if (q <= min_key_) return 0;
  if (q > max_key_) return n_;
  const u64 bucket = (q - min_key_) >> shift_;
  // Clamps rather than trusting the (possibly view-adopted) table blindly:
  // a corrupt radix entry can only mislead the prediction — which the
  // gallop correction absorbs — never read out of bounds.
  const std::size_t nseg = segments.size();
  const std::size_t b =
      std::min<std::size_t>(static_cast<std::size_t>(bucket),
                            radix.size() - 2);
  std::size_t lo = std::min<std::size_t>(radix[b], nseg);
  std::size_t hi = std::min<std::size_t>(radix[b + 1], nseg);
  if (hi < lo) hi = lo;
  // Last segment with first_key <= q (upper_bound - 1).
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (segments[mid].first_key <= q) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const Segment& seg = segments[lo == 0 ? 0 : lo - 1];
  const u64 dx = q >= seg.first_key ? q - seg.first_key : 0;
  double pred = seg.intercept + seg.slope * static_cast<double>(dx);
  // Clamp to the surrounding anchors. The ε bound only covers fitted keys;
  // a query key in the gap past a segment's last fitted point would
  // otherwise ride the line arbitrarily far (64-bit key gaps are huge), and
  // the gallop correction would pay log2(n) probes for what is actually a
  // position between this anchor and the next.
  if (pred < seg.intercept) pred = seg.intercept;
  if (lo < nseg && pred > segments[lo].intercept) {
    pred = segments[lo].intercept;
  }
  // The !(pred > 0) form also routes NaN (corrupt coefficients) to 0.
  if (!(pred > 0)) return 0;
  if (pred >= static_cast<double>(n_)) return n_;
  return static_cast<u64>(pred);
}

SaInterval LearnedSa::FindInterval(const Text& text,
                                   std::span<const index_t> sa,
                                   std::span<const Symbol> pattern) const {
  if (sa.empty()) return SaInterval{};
  if (pattern.empty()) {
    return SaInterval{0, static_cast<index_t>(sa.size()) - 1};
  }
  if (pattern.size() > text.size()) return SaInterval{};
  if (empty()) return FindSaInterval(text, sa, pattern);
  USI_DCHECK(n_ == sa.size());

  u64 qlo;
  u64 qhi;
  PatternKeyRange(pattern, packing_, &qlo, &qhi);
  const u64 slack = Slack();
  const u64 plo = Predict(radix_lower_, lower_, qlo);
  // The upper model predicts the first position past qhi's run — exactly
  // the rb + 1 boundary when the pattern fits in the packed key.
  const u64 phi = Predict(radix_upper_, upper_, qhi);

  // For patterns longer than the packed key the lb boundary can sit
  // anywhere inside the key's run, which only [plo, phi] is guaranteed to
  // bracket; for patterns that fit it is the run's start, so the tight
  // lower window suffices.
  const u64 lb_hi = pattern.size() > packing_.chars ? std::max(plo, phi) : plo;
  const Symbol* text_p = text.data();
  const std::size_t n = text.size();
  const std::size_t first = SearchBoundary(
      text_p, n, sa.data(), sa.size(), pattern.data(), pattern.size(),
      /*t=*/0, plo > slack ? plo - slack : 0, lb_hi + slack);
  // The upper boundary can never precede the lower one; clamping its window
  // up to `first` saves the gallop a wasted left probe.
  const u64 up_lo = std::max<u64>(first, phi > slack ? phi - slack : 0);
  const std::size_t last1 = SearchBoundary(
      text_p, n, sa.data(), sa.size(), pattern.data(), pattern.size(),
      /*t=*/1, up_lo, std::max<u64>(up_lo, phi + slack));
  if (last1 <= first) return SaInterval{};
  return SaInterval{static_cast<index_t>(first),
                    static_cast<index_t>(last1 - 1)};
}

void LearnedSa::FindIntervalBatch(
    const Text& text, std::span<const index_t> sa,
    std::span<const std::span<const Symbol>> patterns,
    std::span<SaInterval> out) const {
  USI_CHECK(out.size() >= patterns.size());
  if (empty() || sa.empty()) {
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      out[i] = FindInterval(text, sa, patterns[i]);
    }
    return;
  }
  USI_DCHECK(n_ == sa.size());
  const Symbol* text_p = text.data();
  const std::size_t n = text.size();
  const index_t* sa_p = sa.data();
  const std::size_t sa_n = sa.size();
  const u64 slack = Slack();

  // One in-flight search per pattern: stage-machine state mirroring
  // SearchBoundary (gallop-verified window, then bracketed binary search),
  // resolving the lb boundary first and the rb+1 boundary second. A group
  // of kGroup searches advances in lock-step rounds of three passes —
  // pick probe + prefetch &sa[probe], load sa[probe] + prefetch the suffix
  // bytes, compare + update — so every SA and text cache miss overlaps
  // kGroup-wide instead of stalling one search at a time.
  enum Stage : u8 { kLeft, kRight, kBinary, kDone };
  struct Search {
    const Symbol* p;
    std::size_t m;
    u32 idx;         ///< Index into patterns / out.
    u8 t;            ///< Boundary being located: 0 = lb, 1 = rb + 1.
    Stage stage;
    bool right_ok;
    std::size_t lo, hi;
    std::size_t llcp, rlcp;
    u64 step;
    u64 phi;         ///< Predicted rb + 1 position (second boundary seed).
    std::size_t first;  ///< Resolved lb boundary.
    std::size_t probe;  ///< SA slot probed this round.
    index_t pos;        ///< sa[probe], loaded in pass B.
  };
  constexpr std::size_t kGroup = 16;
  Search group[kGroup];

  const auto start_boundary = [&](Search& s, u64 seed_lo, u64 seed_hi) {
    s.lo = static_cast<std::size_t>(std::min<u64>(seed_lo, sa_n));
    s.hi = static_cast<std::size_t>(std::min<u64>(seed_hi, sa_n));
    s.llcp = 0;
    s.rlcp = 0;
    s.step = 1;
    s.right_ok = s.hi == sa_n;
    s.stage = kLeft;
  };

  // Runs probe-free transitions; true when s needs a probe, false when the
  // search completed (out[s.idx] written).
  const auto advance = [&](Search& s) -> bool {
    for (;;) {
      switch (s.stage) {
        case kLeft:
          if (s.lo == 0) {
            s.stage = s.right_ok ? kBinary : kRight;
            s.step = 1;
            continue;
          }
          s.probe = s.lo - 1;
          return true;
        case kRight:
          if (s.hi == sa_n) {
            s.stage = kBinary;
            continue;
          }
          s.probe = s.hi;
          return true;
        case kBinary:
          if (s.lo < s.hi) {
            s.probe = s.lo + (s.hi - s.lo) / 2;
            return true;
          }
          if (s.t == 0) {
            s.first = s.lo;
            s.t = 1;
            const u64 up_lo = std::max<u64>(
                s.first, s.phi > slack ? s.phi - slack : 0);
            start_boundary(s, up_lo, std::max<u64>(up_lo, s.phi + slack));
            continue;
          }
          out[s.idx] = s.lo <= s.first
                           ? SaInterval{}
                           : SaInterval{static_cast<index_t>(s.first),
                                        static_cast<index_t>(s.lo - 1)};
          s.stage = kDone;
          return false;
        case kDone:
          return false;
      }
    }
  };

  const auto apply = [&](Search& s, const SuffixCmp& c) {
    const int t = s.t;
    switch (s.stage) {
      case kLeft:
        if (c.sign < t) {
          s.llcp = c.lcp;
          s.stage = s.right_ok ? kBinary : kRight;
          s.step = 1;
        } else {
          s.hi = s.lo - 1;
          s.rlcp = c.lcp;
          s.right_ok = true;
          s.lo = s.lo > s.step ? s.lo - s.step : 0;
          s.step <<= 1;
        }
        break;
      case kRight:
        if (c.sign >= t) {
          s.rlcp = c.lcp;
          s.stage = kBinary;
        } else {
          s.lo = s.hi + 1;
          s.llcp = c.lcp;
          s.hi = std::min<std::size_t>(sa_n, s.hi + s.step);
          s.step <<= 1;
        }
        break;
      case kBinary:
        if (c.sign < t) {
          s.lo = s.probe + 1;
          s.llcp = c.lcp;
        } else {
          s.hi = s.probe;
          s.rlcp = c.lcp;
        }
        break;
      case kDone:
        break;
    }
  };

  for (std::size_t base = 0; base < patterns.size(); base += kGroup) {
    const std::size_t count = std::min(kGroup, patterns.size() - base);
    std::size_t live = 0;
    for (std::size_t g = 0; g < count; ++g) {
      const std::size_t i = base + g;
      const std::span<const Symbol> pattern = patterns[i];
      if (pattern.empty()) {
        out[i] = SaInterval{0, static_cast<index_t>(sa_n) - 1};
        continue;
      }
      if (pattern.size() > n) {
        out[i] = SaInterval{};
        continue;
      }
      Search& s = group[live++];
      s.p = pattern.data();
      s.m = pattern.size();
      s.idx = static_cast<u32>(i);
      s.t = 0;
      u64 qlo;
      u64 qhi;
      PatternKeyRange(pattern, packing_, &qlo, &qhi);
      const u64 plo = Predict(radix_lower_, lower_, qlo);
      s.phi = Predict(radix_upper_, upper_, qhi);
      // Same lb-window widening as FindInterval: boundaries inside a key
      // run (m > chars) are only bracketed by [plo, phi].
      const u64 lb_hi = s.m > packing_.chars ? std::max(plo, s.phi) : plo;
      start_boundary(s, plo > slack ? plo - slack : 0, lb_hi + slack);
    }

    while (live > 0) {
      // Pass A: pick each search's next probe, prefetch the SA slot.
      std::size_t active = 0;
      for (std::size_t g = 0; g < live; ++g) {
        Search& s = group[g];
        if (advance(s)) {
          group[active++] = s;
          __builtin_prefetch(sa_p + group[active - 1].probe);
        }
      }
      live = active;
      // Pass B: load the (now resident) SA entry, prefetch suffix bytes.
      for (std::size_t g = 0; g < live; ++g) {
        Search& s = group[g];
        s.pos = sa_p[s.probe];
        __builtin_prefetch(text_p + s.pos);
      }
      // Pass C: compare and update.
      for (std::size_t g = 0; g < live; ++g) {
        Search& s = group[g];
        const std::size_t skip =
            s.stage == kBinary ? std::min(s.llcp, s.rlcp) : 0;
        apply(s, CompareSuffix(text_p, n, s.pos, s.p, s.m, skip));
      }
    }
  }
}

std::vector<u8> LearnedSa::Serialize() const {
  if (empty()) return {};
  PayloadHeader header;
  header.epsilon = epsilon_;
  header.n = n_;
  header.num_radix = radix_lower_.size();
  header.num_segments = lower_.size();
  header.num_upper_segments = upper_.size();
  header.min_key = min_key_;
  header.max_key = max_key_;
  header.shift = shift_;
  header.key_bits = packing_.bits;
  // Layout: header | lower radix (8-padded) | lower segments | upper radix
  // (8-padded) | upper segments. Pad gaps stay zero (vector value-init) —
  // deterministic bytes.
  const u64 radix_bytes = (radix_lower_.size_bytes() + 7) & ~u64{7};
  std::vector<u8> payload(sizeof(header) + 2 * radix_bytes +
                          lower_.size_bytes() + upper_.size_bytes());
  u8* out = payload.data();
  std::memcpy(out, &header, sizeof(header));
  out += sizeof(header);
  std::memcpy(out, radix_lower_.data(), radix_lower_.size_bytes());
  out += radix_bytes;
  std::memcpy(out, lower_.data(), lower_.size_bytes());
  out += lower_.size_bytes();
  std::memcpy(out, radix_upper_.data(), radix_upper_.size_bytes());
  out += radix_bytes;
  std::memcpy(out, upper_.data(), upper_.size_bytes());
  return payload;
}

bool LearnedSa::AdoptView(const u8* data, u64 length) {
  *this = LearnedSa();
  if (data == nullptr || length < sizeof(PayloadHeader)) return false;
  if ((reinterpret_cast<std::uintptr_t>(data) & 7) != 0) return false;
  PayloadHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (header.magic != kPayloadMagic) return false;
  if (header.epsilon == 0 || header.num_segments == 0) return false;
  if (header.num_upper_segments == 0) return false;
  if (header.key_bits == 0 || header.key_bits > 8) return false;
  if (header.num_radix < 2 || header.shift >= 64) return false;
  if (header.min_key > header.max_key) return false;
  if (header.n == 0 || header.n > kInvalidIndex) return false;
  if (header.num_segments > header.n) return false;
  if (header.num_upper_segments > header.n) return false;
  // Geometry must account for every byte: a short or oversized payload is
  // corruption, not slack.
  const u64 radix_bytes = (header.num_radix * sizeof(u32) + 7) & ~u64{7};
  const u64 expected = sizeof(PayloadHeader) + 2 * radix_bytes +
                       header.num_segments * sizeof(Segment) +
                       header.num_upper_segments * sizeof(Segment);
  if (header.num_radix > (u64{1} << (kMaxRadixBits + 1)) ||
      expected != length) {
    return false;
  }
  n_ = header.n;
  epsilon_ = header.epsilon;
  packing_ = KeyPacking{header.key_bits, 64 / header.key_bits};
  min_key_ = header.min_key;
  max_key_ = header.max_key;
  shift_ = header.shift;
  const u8* p = data + sizeof(PayloadHeader);
  radix_lower_ = {reinterpret_cast<const u32*>(p),
                  static_cast<std::size_t>(header.num_radix)};
  p += radix_bytes;
  lower_ = {reinterpret_cast<const Segment*>(p),
            static_cast<std::size_t>(header.num_segments)};
  p += header.num_segments * sizeof(Segment);
  radix_upper_ = {reinterpret_cast<const u32*>(p),
                  static_cast<std::size_t>(header.num_radix)};
  p += radix_bytes;
  upper_ = {reinterpret_cast<const Segment*>(p),
            static_cast<std::size_t>(header.num_upper_segments)};
  return true;
}

std::size_t LearnedSa::SizeInBytes() const {
  if (empty()) return 0;
  return sizeof(PayloadHeader) +
         2 * ((radix_lower_.size_bytes() + 7) & ~u64{7}) +
         lower_.size_bytes() + upper_.size_bytes();
}

}  // namespace usi
