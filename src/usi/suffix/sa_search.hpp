#ifndef USI_SUFFIX_SA_SEARCH_HPP_
#define USI_SUFFIX_SA_SEARCH_HPP_

/// \file sa_search.hpp
/// Pattern search in a suffix array.
///
/// This is the "classic text index" half of USI_TOP-K: patterns missing from
/// the hash table are located as an SA interval in O(m log n), then their
/// occurrences SA[lb..rb] are aggregated through the PSW array.

#include <span>
#include <vector>

#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Half-open result of a pattern search: occurrences are SA[lb..rb]
/// inclusive; empty when rb < lb.
struct SaInterval {
  index_t lb = 1;
  index_t rb = 0;

  bool IsEmpty() const { return rb < lb || lb == kInvalidIndex; }
  index_t Count() const { return IsEmpty() ? 0 : rb - lb + 1; }
};

/// Finds the SA interval of all suffixes having \p pattern as a prefix.
/// O(m log n) character comparisons. The SA is taken as a span so heap-built
/// (vector) and mmap-backed (format v3) arrays search identically.
SaInterval FindSaInterval(const Text& text, std::span<const index_t> sa,
                          std::span<const Symbol> pattern);

/// Collects the occurrence start positions of \p pattern (unsorted, SA
/// order). Convenience for tests and examples.
std::vector<index_t> CollectOccurrences(const Text& text,
                                        std::span<const index_t> sa,
                                        std::span<const Symbol> pattern);

}  // namespace usi

#endif  // USI_SUFFIX_SA_SEARCH_HPP_
