#ifndef USI_SUFFIX_SA_SEARCH_HPP_
#define USI_SUFFIX_SA_SEARCH_HPP_

/// \file sa_search.hpp
/// Pattern search in a suffix array.
///
/// This is the "classic text index" half of USI_TOP-K: patterns missing from
/// the hash table are located as an SA interval in O(m log n), then their
/// occurrences SA[lb..rb] are aggregated through the PSW array.

#include <span>
#include <vector>

#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Result of a pattern search: occurrences are SA[lb..rb] inclusive.
///
/// The canonical empty interval is the default state {lb = 1, rb = 0} —
/// every empty result constructs SaInterval{}, and emptiness is exactly
/// rb < lb. No other representation (sentinel values included) is produced
/// or recognized; code that builds intervals by hand must keep lb <= rb for
/// non-empty ones.
struct SaInterval {
  index_t lb = 1;
  index_t rb = 0;

  bool IsEmpty() const { return rb < lb; }
  index_t Count() const { return IsEmpty() ? 0 : rb - lb + 1; }
};

/// Finds the SA interval of all suffixes having \p pattern as a prefix.
/// O(m log n) character comparisons. The SA is taken as a span so heap-built
/// (vector) and mmap-backed (format v3) arrays search identically.
SaInterval FindSaInterval(const Text& text, std::span<const index_t> sa,
                          std::span<const Symbol> pattern);

/// Calls fn(sa[k]) for every k in \p interval, in SA order — the one
/// occurrence-walk shared by utility aggregation and occurrence collection.
/// SA reads run with software prefetch a few entries ahead, and when
/// \p indexed_prefetch is non-null, indexed_prefetch[sa[k]] is prefetched
/// one short lead ahead too (the PSW lookup the aggregation loop is about
/// to perform); occurrence lists are in SA order, so both streams would
/// otherwise miss on nearly every iteration of a large interval.
template <typename Fn>
inline void VisitSaInterval(std::span<const index_t> sa, SaInterval interval,
                            const double* indexed_prefetch, Fn&& fn) {
  if (interval.IsEmpty()) return;
  // Two leads: the SA stream is sequential (long lead, cheap to hide), the
  // dependent indexed stream needs the SA value first (short lead).
  constexpr index_t kSaLead = 16;
  constexpr index_t kIndexedLead = 4;
  const index_t lb = interval.lb;
  const index_t rb = interval.rb;
  for (index_t k = lb; k <= rb; ++k) {
    if (k + kSaLead <= rb) __builtin_prefetch(&sa[k + kSaLead]);
    if (indexed_prefetch != nullptr && k + kIndexedLead <= rb) {
      __builtin_prefetch(indexed_prefetch + sa[k + kIndexedLead]);
    }
    fn(sa[k]);
  }
}

/// Collects the occurrence start positions of \p pattern (unsorted, SA
/// order). Convenience for tests and examples.
std::vector<index_t> CollectOccurrences(const Text& text,
                                        std::span<const index_t> sa,
                                        std::span<const Symbol> pattern);

}  // namespace usi

#endif  // USI_SUFFIX_SA_SEARCH_HPP_
