#include "usi/suffix/suffix_tree.hpp"

#include <algorithm>

namespace usi {

SuffixTree::SuffixTree() {
  nodes_.reserve(16);
  root_ = NewNode(0, 0, kNoNode);
  active_node_ = root_;
}

SuffixTree::SuffixTree(const Text& text) : SuffixTree() {
  text_.reserve(text.size());
  for (Symbol c : text) Extend(c);
}

index_t SuffixTree::ChildOf(index_t node, Symbol c) const {
  const auto& children = nodes_[node].children;
  auto it = std::lower_bound(
      children.begin(), children.end(), c,
      [](const std::pair<Symbol, index_t>& e, Symbol key) { return e.first < key; });
  if (it != children.end() && it->first == c) return it->second;
  return kNoNode;
}

void SuffixTree::SetChild(index_t node, Symbol c, index_t child) {
  auto& children = nodes_[node].children;
  auto it = std::lower_bound(
      children.begin(), children.end(), c,
      [](const std::pair<Symbol, index_t>& e, Symbol key) { return e.first < key; });
  if (it != children.end() && it->first == c) {
    it->second = child;
  } else {
    children.insert(it, {c, child});
  }
  nodes_[child].parent = node;
}

index_t SuffixTree::NewNode(index_t start, index_t end, index_t parent) {
  Node node;
  node.start = start;
  node.end = end;
  node.parent = parent;
  nodes_.push_back(std::move(node));
  return static_cast<index_t>(nodes_.size() - 1);
}

void SuffixTree::AddLeafCountUpwards(index_t node) {
  while (node != kNoNode) {
    ++nodes_[node].leaves;
    node = nodes_[node].parent;
  }
}

void SuffixTree::Extend(Symbol c) {
  text_.push_back(c);
  const index_t pos = static_cast<index_t>(text_.size()) - 1;
  ++remaining_;
  index_t last_internal = kNoNode;  // Awaiting a suffix link this phase.

  while (remaining_ > 0) {
    if (active_length_ == 0) active_edge_ = pos;
    const Symbol edge_symbol = text_[active_edge_];
    const index_t next = ChildOf(active_node_, edge_symbol);
    if (next == kNoNode) {
      // Rule 2 at a node: new leaf hanging off active_node_. The suffix
      // being inserted is the longest pending one: |S| - remaining_.
      const index_t leaf = NewNode(pos, kOpenEnd, active_node_);
      nodes_[leaf].suffix_start = pos + 1 - remaining_;
      SetChild(active_node_, text_[pos], leaf);
      AddLeafCountUpwards(leaf);
      if (last_internal != kNoNode) {
        nodes_[last_internal].link = active_node_;
        last_internal = kNoNode;
      }
    } else {
      // Walk down if the active point passed the edge end.
      const index_t edge_len = EdgeLength(nodes_[next]);
      if (active_length_ >= edge_len) {
        active_node_ = next;
        active_edge_ += edge_len;
        active_length_ -= edge_len;
        continue;
      }
      if (text_[nodes_[next].start + active_length_] == c) {
        // Rule 3: the suffix is already present implicitly; phase ends.
        if (last_internal != kNoNode) {
          nodes_[last_internal].link = active_node_;
          last_internal = kNoNode;
        }
        ++active_length_;
        break;
      }
      // Rule 2 mid-edge: split, then hang the new leaf off the split node.
      const index_t split =
          NewNode(nodes_[next].start, nodes_[next].start + active_length_,
                  active_node_);
      nodes_[split].leaves = nodes_[next].leaves;
      SetChild(active_node_, edge_symbol, split);
      nodes_[next].start += active_length_;
      SetChild(split, text_[nodes_[next].start], next);
      const index_t leaf = NewNode(pos, kOpenEnd, split);
      nodes_[leaf].suffix_start = pos + 1 - remaining_;
      SetChild(split, c, leaf);
      AddLeafCountUpwards(leaf);
      if (last_internal != kNoNode) nodes_[last_internal].link = split;
      last_internal = split;
    }
    --remaining_;
    if (active_node_ == root_ && active_length_ > 0) {
      --active_length_;
      active_edge_ = pos - remaining_ + 1;
    } else if (active_node_ != root_) {
      active_node_ = nodes_[active_node_].link != kNoNode
                         ? nodes_[active_node_].link
                         : root_;
    }
  }
}

index_t SuffixTree::FindLocus(std::span<const Symbol> pattern) const {
  index_t node = root_;
  std::size_t matched = 0;
  while (matched < pattern.size()) {
    const index_t child = ChildOf(node, pattern[matched]);
    if (child == kNoNode) return kNoNode;
    const index_t edge_len = EdgeLength(nodes_[child]);
    for (index_t k = 0; k < edge_len && matched < pattern.size(); ++k) {
      if (text_[nodes_[child].start + k] != pattern[matched]) return kNoNode;
      ++matched;
    }
    node = child;
  }
  return node;
}

index_t SuffixTree::CountOccurrences(std::span<const Symbol> pattern) const {
  if (pattern.empty()) return static_cast<index_t>(text_.size());
  index_t count = 0;
  const index_t locus = FindLocus(pattern);
  if (locus != kNoNode) count = nodes_[locus].leaves;
  // Pending (implicit) suffixes are the `remaining_` shortest ones; each that
  // starts with the pattern is one more occurrence not counted by any leaf.
  const index_t n = static_cast<index_t>(text_.size());
  for (index_t j = n - remaining_; j < n; ++j) {
    if (n - j < pattern.size()) break;  // Shorter suffixes can only shrink.
    bool match = true;
    for (std::size_t k = 0; k < pattern.size(); ++k) {
      if (text_[j + k] != pattern[k]) {
        match = false;
        break;
      }
    }
    if (match) ++count;
  }
  return count;
}

std::vector<index_t> SuffixTree::CollectOccurrences(
    std::span<const Symbol> pattern) const {
  std::vector<index_t> occurrences;
  std::vector<index_t> stack;
  CollectOccurrencesInto(pattern, occurrences, stack);
  return occurrences;
}

void SuffixTree::CollectOccurrencesInto(std::span<const Symbol> pattern,
                                        std::vector<index_t>& out,
                                        std::vector<index_t>& stack) const {
  out.clear();
  stack.clear();
  const index_t n = static_cast<index_t>(text_.size());
  if (pattern.empty()) {
    out.resize(n);
    for (index_t j = 0; j < n; ++j) out[j] = j;
    return;
  }
  const index_t locus = FindLocus(pattern);
  if (locus != kNoNode) {
    out.reserve(nodes_[locus].leaves);
    stack.push_back(locus);
    while (!stack.empty()) {
      const index_t node = stack.back();
      stack.pop_back();
      if (nodes_[node].suffix_start != kInvalidIndex) {
        out.push_back(nodes_[node].suffix_start);
      }
      for (const auto& [symbol, child] : nodes_[node].children) {
        (void)symbol;
        stack.push_back(child);
      }
    }
  }
  // Pending (implicit) suffixes that start with the pattern.
  for (index_t j = n - remaining_; j < n; ++j) {
    if (n - j < pattern.size()) break;
    bool match = true;
    for (std::size_t k = 0; k < pattern.size(); ++k) {
      if (text_[j + k] != pattern[k]) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(j);
  }
}

std::vector<SuffixTree::NodeSummary> SuffixTree::CollectNodeSummaries() const {
  // Pending pass-through corrections: +1 for every node whose string is a
  // prefix of a pending suffix.
  std::vector<index_t> extra(nodes_.size(), 0);
  const index_t n = static_cast<index_t>(text_.size());
  for (index_t j = n - remaining_; j < n; ++j) {
    index_t node = root_;
    index_t matched = 0;
    while (true) {
      const index_t child = (j + matched < n) ? ChildOf(node, text_[j + matched])
                                              : kNoNode;
      if (child == kNoNode) break;
      const index_t edge_len = EdgeLength(nodes_[child]);
      bool full = true;
      for (index_t k = 0; k < edge_len; ++k) {
        if (j + matched + k >= n ||
            text_[nodes_[child].start + k] != text_[j + matched + k]) {
          full = false;
          break;
        }
      }
      if (!full) break;
      matched += edge_len;
      ++extra[child];
      node = child;
    }
  }

  // Iterative DFS computing string depths.
  std::vector<NodeSummary> summaries;
  summaries.reserve(nodes_.size());
  struct Frame {
    index_t node;
    index_t depth;         // Depth of this node.
    index_t parent_depth;  // Depth of its parent.
  };
  std::vector<Frame> stack;
  stack.push_back({root_, 0, 0});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.node != root_) {
      summaries.push_back(
          {frame.depth, frame.parent_depth,
           nodes_[frame.node].leaves + extra[frame.node]});
    }
    for (const auto& [symbol, child] : nodes_[frame.node].children) {
      (void)symbol;
      stack.push_back(
          {child, frame.depth + EdgeLength(nodes_[child]), frame.depth});
    }
  }
  return summaries;
}

std::size_t SuffixTree::SizeInBytes() const {
  std::size_t total =
      text_.capacity() * sizeof(Symbol) + nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    total += node.children.capacity() * sizeof(std::pair<Symbol, index_t>);
  }
  return total;
}

}  // namespace usi
