#ifndef USI_SUFFIX_ESA_HPP_
#define USI_SUFFIX_ESA_HPP_

/// \file esa.hpp
/// Enhanced-suffix-array view of the suffix tree.
///
/// Abouelhoda, Kurtz & Ohlebusch show a bottom-up traversal of the LCP array
/// visits exactly the lcp-intervals, which are the explicit internal nodes of
/// the suffix tree; adding the singleton leaf intervals yields every explicit
/// node with its frequency f(v) = rb - lb + 1, string depth sd(v), and parent
/// string depth. Section V's data structure and Section VI's sampled rounds
/// (Algorithm 4.4 of [37]) both consume this enumeration, so it is written
/// once, generic over (lcp, suffix lengths) — the dense and sparse cases pass
/// different arrays.

#include <vector>

#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// An explicit suffix-tree node: the substrings it represents are the
/// prefixes of str(v) with lengths in (parent_depth, depth], each occurring
/// exactly rb - lb + 1 times (q(v) = depth - parent_depth of them).
struct SuffixTreeNode {
  index_t depth;         ///< sd(v).
  index_t parent_depth;  ///< sd(parent(v)); depth > parent_depth always.
  index_t lb;            ///< Left end of the (sparse) SA interval.
  index_t rb;            ///< Right end (inclusive).

  /// Frequency f(v): number of (sampled) occurrences.
  index_t frequency() const { return rb - lb + 1; }

  /// q(v): number of distinct substrings this node represents.
  index_t edge_length() const { return depth - parent_depth; }

  bool operator==(const SuffixTreeNode&) const = default;
};

/// One open lcp-interval on the bottom-up traversal stack: value \p lcp,
/// left boundary \p lb, right end still unknown.
struct LcpStackEntry {
  index_t lcp;
  index_t lb;

  bool operator==(const LcpStackEntry&) const = default;
};

/// Processes traversal steps i in [\p begin, \p end) of the bottom-up pass
/// (the full enumeration is steps 1 .. m inclusive). \p stack must hold the
/// open-interval stack as it stands *entering* step \p begin — {{0, 0}} for
/// begin == 1, or a snapshot from LcpIntervalStacksAt for a mid-array chunk;
/// it is advanced in place. Because the entering stack carries the true
/// global lb and lcp values, the emissions of this range are exactly the
/// emissions the full sequential pass makes during the same steps — which is
/// what lets chunked (pool-parallel) enumeration concatenate per-chunk
/// outputs into the byte-identical sequential order.
template <typename EmitFn>
void EnumerateSuffixTreeNodeRange(const std::vector<index_t>& lcp,
                                  const std::vector<index_t>& suffix_len,
                                  index_t begin, index_t end,
                                  std::vector<LcpStackEntry>& stack,
                                  EmitFn emit) {
  const index_t m = static_cast<index_t>(suffix_len.size());
  USI_DCHECK(begin >= 1 && end <= m + 1);
  for (index_t i = begin; i < end; ++i) {
    const index_t current_lcp = (i < m) ? lcp[i] : 0;
    // Leaf for SA position i-1.
    {
      const index_t left_lcp = lcp[i - 1];  // lcp[0] == 0 by convention.
      const index_t parent_depth =
          std::max(i > 1 ? left_lcp : index_t{0}, current_lcp);
      const index_t depth = suffix_len[i - 1];
      if (depth > parent_depth) {
        emit(SuffixTreeNode{depth, parent_depth, i - 1, i - 1});
      }
    }
    index_t lb = i - 1;
    while (stack.back().lcp > current_lcp) {
      const LcpStackEntry top = stack.back();
      stack.pop_back();
      const index_t parent_depth = std::max(stack.back().lcp, current_lcp);
      emit(SuffixTreeNode{top.lcp, parent_depth, top.lb, i - 1});
      lb = top.lb;
    }
    if (stack.back().lcp < current_lcp) stack.push_back({current_lcp, lb});
  }
}

/// Enumerates every explicit node of the (possibly sparse) suffix tree in
/// one bottom-up pass over \p lcp. \p suffix_len[k] is the length of the
/// k-th lexicographically smallest (sampled) suffix. Nodes with
/// depth == parent_depth (possible for leaves whose suffix is a prefix of
/// the next one, and for the root) are not emitted. Order of emission is the
/// bottom-up lcp-interval order; leaves are emitted before the internal
/// nodes that close over them.
template <typename EmitFn>
void EnumerateSuffixTreeNodes(const std::vector<index_t>& lcp,
                              const std::vector<index_t>& suffix_len,
                              EmitFn emit) {
  const index_t m = static_cast<index_t>(suffix_len.size());
  if (m == 0) return;
  USI_DCHECK(lcp.size() == suffix_len.size());
  std::vector<LcpStackEntry> stack;
  stack.push_back({0, 0});
  EnumerateSuffixTreeNodeRange(lcp, suffix_len, 1, m + 1, stack, emit);
}

/// Replays only the stack transitions of the bottom-up traversal (no leaf
/// handling, no node construction — a far lighter loop than the full pass)
/// and snapshots the open-interval stack as it stands entering each step in
/// \p boundaries (ascending, each in [1, m]). Chunked enumeration seeds one
/// EnumerateSuffixTreeNodeRange per chunk from these snapshots.
std::vector<std::vector<LcpStackEntry>> LcpIntervalStacksAt(
    const std::vector<index_t>& lcp, const std::vector<index_t>& boundaries);

/// Convenience: collects the enumeration into a vector.
std::vector<SuffixTreeNode> CollectSuffixTreeNodes(
    const std::vector<index_t>& lcp, const std::vector<index_t>& suffix_len);

/// Builds the suffix-length array for the dense suffix array of a length-n
/// text: suffix_len[k] = n - sa[k].
std::vector<index_t> DenseSuffixLengths(const std::vector<index_t>& sa,
                                        index_t n);

}  // namespace usi

#endif  // USI_SUFFIX_ESA_HPP_
