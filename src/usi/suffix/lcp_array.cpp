#include "usi/suffix/lcp_array.hpp"

#include <algorithm>

#include "usi/parallel/thread_pool.hpp"
#include "usi/suffix/suffix_array.hpp"

namespace usi {
namespace {

/// Kasai's scan over the text-position range [begin, end): each position
/// writes exactly one LCP slot (lcp[rank[i]]), so disjoint ranges write
/// disjoint slots and the chunked passes compose race-free.
void KasaiRange(const Text& text, const std::vector<index_t>& sa,
                const std::vector<index_t>& rank, index_t begin, index_t end,
                std::vector<index_t>& lcp) {
  const index_t n = static_cast<index_t>(text.size());
  index_t h = 0;
  for (index_t i = begin; i < end; ++i) {
    if (rank[i] == 0) {
      h = 0;
      continue;
    }
    const index_t j = sa[rank[i] - 1];
    if (h > 0) --h;  // Kasai's invariant: lcp drops by at most one.
    while (i + h < n && j + h < n && text[i + h] == text[j + h]) ++h;
    lcp[rank[i]] = h;
  }
}

}  // namespace

std::vector<index_t> BuildLcpArray(const Text& text,
                                   const std::vector<index_t>& sa,
                                   ThreadPool* pool) {
  const std::size_t n = text.size();
  std::vector<index_t> lcp(n, 0);
  if (n == 0) return lcp;
  const std::vector<index_t> rank = InverseSuffixArray(sa);

  const unsigned workers = pool == nullptr ? 1 : pool->thread_count();
  if (workers <= 1 || n < 4096) {
    KasaiRange(text, sa, rank, 0, static_cast<index_t>(n), lcp);
    return lcp;
  }

  // A handful of chunks per worker smooths out ranges whose suffixes have
  // unusually long matches; each chunk restarts Kasai's h at zero.
  const std::size_t chunks = std::min<std::size_t>(n, 4 * workers);
  const std::size_t chunk_len = (n + chunks - 1) / chunks;
  ParallelFor(pool, chunks, [&](std::size_t c, unsigned /*worker*/) {
    const index_t begin = static_cast<index_t>(c * chunk_len);
    const index_t end =
        static_cast<index_t>(std::min(n, (c + 1) * chunk_len));
    KasaiRange(text, sa, rank, begin, end, lcp);
  });
  return lcp;
}

}  // namespace usi
