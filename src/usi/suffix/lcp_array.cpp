#include "usi/suffix/lcp_array.hpp"

#include "usi/suffix/suffix_array.hpp"

namespace usi {

std::vector<index_t> BuildLcpArray(const Text& text,
                                   const std::vector<index_t>& sa) {
  const std::size_t n = text.size();
  std::vector<index_t> lcp(n, 0);
  if (n == 0) return lcp;
  const std::vector<index_t> rank = InverseSuffixArray(sa);
  index_t h = 0;
  for (index_t i = 0; i < n; ++i) {
    if (rank[i] == 0) {
      h = 0;
      continue;
    }
    const index_t j = sa[rank[i] - 1];
    if (h > 0) --h;  // Kasai's invariant: lcp drops by at most one.
    while (i + h < n && j + h < n && text[i + h] == text[j + h]) ++h;
    lcp[rank[i]] = h;
  }
  return lcp;
}

}  // namespace usi
