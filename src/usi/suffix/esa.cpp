#include "usi/suffix/esa.hpp"

namespace usi {

std::vector<SuffixTreeNode> CollectSuffixTreeNodes(
    const std::vector<index_t>& lcp, const std::vector<index_t>& suffix_len) {
  std::vector<SuffixTreeNode> nodes;
  nodes.reserve(2 * suffix_len.size());
  EnumerateSuffixTreeNodes(lcp, suffix_len,
                           [&](const SuffixTreeNode& node) { nodes.push_back(node); });
  return nodes;
}

std::vector<index_t> DenseSuffixLengths(const std::vector<index_t>& sa,
                                        index_t n) {
  std::vector<index_t> lengths(sa.size());
  for (std::size_t k = 0; k < sa.size(); ++k) lengths[k] = n - sa[k];
  return lengths;
}

}  // namespace usi
