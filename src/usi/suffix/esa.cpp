#include "usi/suffix/esa.hpp"

namespace usi {

std::vector<SuffixTreeNode> CollectSuffixTreeNodes(
    const std::vector<index_t>& lcp, const std::vector<index_t>& suffix_len) {
  std::vector<SuffixTreeNode> nodes;
  nodes.reserve(2 * suffix_len.size());
  EnumerateSuffixTreeNodes(lcp, suffix_len,
                           [&](const SuffixTreeNode& node) { nodes.push_back(node); });
  return nodes;
}

std::vector<std::vector<LcpStackEntry>> LcpIntervalStacksAt(
    const std::vector<index_t>& lcp, const std::vector<index_t>& boundaries) {
  std::vector<std::vector<LcpStackEntry>> snapshots;
  snapshots.reserve(boundaries.size());
  if (boundaries.empty()) return snapshots;
  const index_t m = static_cast<index_t>(lcp.size());
  std::vector<LcpStackEntry> stack;
  stack.push_back({0, 0});
  std::size_t next = 0;
  for (index_t i = 1; i <= m && next < boundaries.size(); ++i) {
    USI_DCHECK(boundaries[next] >= 1 && boundaries[next] <= m);
    if (i == boundaries[next]) {
      snapshots.push_back(stack);
      ++next;
      if (next == boundaries.size()) break;
    }
    // Exactly the stack transitions of EnumerateSuffixTreeNodeRange step i.
    const index_t current_lcp = (i < m) ? lcp[i] : 0;
    index_t lb = i - 1;
    while (stack.back().lcp > current_lcp) {
      lb = stack.back().lb;
      stack.pop_back();
    }
    if (stack.back().lcp < current_lcp) stack.push_back({current_lcp, lb});
  }
  USI_DCHECK(snapshots.size() == boundaries.size());
  return snapshots;
}

std::vector<index_t> DenseSuffixLengths(const std::vector<index_t>& sa,
                                        index_t n) {
  std::vector<index_t> lengths(sa.size());
  for (std::size_t k = 0; k < sa.size(); ++k) lengths[k] = n - sa[k];
  return lengths;
}

}  // namespace usi
