#include "usi/suffix/sparse_suffix_array.hpp"

#include <algorithm>

namespace usi {

SparseSuffixIndex BuildSparseSuffixIndex(std::vector<index_t> sample_positions,
                                         const LceOracle& lce) {
  SparseSuffixIndex index;
  index.positions = std::move(sample_positions);
  std::sort(index.positions.begin(), index.positions.end(),
            [&](index_t a, index_t b) { return lce.CompareSuffixes(a, b) < 0; });
  index.lcp.assign(index.positions.size(), 0);
  for (std::size_t k = 1; k < index.positions.size(); ++k) {
    index.lcp[k] = lce.Lce(index.positions[k - 1], index.positions[k]);
  }
  return index;
}

}  // namespace usi
