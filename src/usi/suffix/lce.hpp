#ifndef USI_SUFFIX_LCE_HPP_
#define USI_SUFFIX_LCE_HPP_

/// \file lce.hpp
/// Longest-common-extension oracles.
///
/// Approximate-Top-K (Section VI) implements all its string comparisons with
/// LCE queries: lce(i, j) = |longest common prefix of S[i..] and S[j..]|. The
/// paper uses Prezza's in-place structure (O(1) extra space, polylog query);
/// we expose an interface with four backends so the space/time trade-off is
/// explicit and benchmarkable (DESIGN.md Section 3):
///
///  * NaiveLce       — direct scan, O(1) space, O(lce) query (oracle).
///  * RmqLce         — SA + LCP + RMQ, O(n) words, O(1)-ish query.
///  * KrLce          — full prefix-fingerprint table, O(n) words,
///                     O(log n) query via exponential + binary search.
///  * SampledKrLce   — fingerprints every s-th prefix, O(n/s) words,
///                     O(s + log n) query; the small-space stand-in for
///                     Prezza's structure used by Approximate-Top-K.

#include <memory>
#include <vector>

#include "usi/hash/karp_rabin.hpp"
#include "usi/suffix/rmq.hpp"
#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// Abstract LCE oracle over a fixed text.
class LceOracle {
 public:
  virtual ~LceOracle() = default;

  /// Length of the longest common prefix of S[i..n) and S[j..n).
  virtual index_t Lce(index_t i, index_t j) const = 0;

  /// Extra heap space held by the oracle (beyond the text).
  virtual std::size_t SizeInBytes() const = 0;

  /// Lexicographic comparison of suffixes S[i..) and S[j..) via one LCE.
  /// Returns negative/zero/positive like memcmp.
  int CompareSuffixes(index_t i, index_t j) const;

  /// Lexicographic comparison of fragments S[i..i+li) and S[j..j+lj).
  int CompareFragments(index_t i, index_t len_i, index_t j, index_t len_j) const;

 protected:
  explicit LceOracle(const Text& text) : text_(&text) {}

  const Text& text() const { return *text_; }
  index_t n() const { return static_cast<index_t>(text_->size()); }

 private:
  const Text* text_;
};

/// Direct character scan.
class NaiveLce : public LceOracle {
 public:
  explicit NaiveLce(const Text& text) : LceOracle(text) {}
  index_t Lce(index_t i, index_t j) const override;
  std::size_t SizeInBytes() const override { return 0; }
};

/// lce(i, j) = min of LCP[rank[i]+1 .. rank[j]]; constant-time via RMQ.
class RmqLce : public LceOracle {
 public:
  /// Builds SA + LCP + RMQ internally (O(n) construction).
  explicit RmqLce(const Text& text);

  /// Shares prebuilt structures (kept alive by the caller).
  RmqLce(const Text& text, const std::vector<index_t>& sa,
         const std::vector<index_t>& lcp);

  index_t Lce(index_t i, index_t j) const override;
  std::size_t SizeInBytes() const override;

 private:
  void BuildRank(const std::vector<index_t>& sa);

  std::vector<index_t> owned_sa_;
  std::vector<index_t> owned_lcp_;
  const std::vector<index_t>* lcp_ = nullptr;
  std::vector<index_t> rank_;
  RangeMin rmq_;
};

/// Full Karp-Rabin prefix table; LCE by exponential + binary search on
/// fingerprint equality. Monte Carlo (wrong with probability O(n^2/2^61)).
class KrLce : public LceOracle {
 public:
  KrLce(const Text& text, const KarpRabinHasher& hasher);
  index_t Lce(index_t i, index_t j) const override;
  std::size_t SizeInBytes() const override { return fps_.SizeInBytes(); }

 private:
  PrefixFingerprints fps_;
};

/// Sampled Karp-Rabin prefixes: stores fp(S[0..ks)) for every k; a fragment
/// fingerprint costs O(s) rolling work, so lce costs O(s log n). This is the
/// sublinear-space backend Approximate-Top-K uses by default.
class SampledKrLce : public LceOracle {
 public:
  /// \p sample_rate is s; space is O(n/s) words.
  SampledKrLce(const Text& text, const KarpRabinHasher& hasher,
               index_t sample_rate);
  index_t Lce(index_t i, index_t j) const override;
  std::size_t SizeInBytes() const override {
    return samples_.capacity() * sizeof(u64);
  }

 private:
  /// Fingerprint of text[0..len) in O(sample_rate).
  u64 PrefixFp(index_t len) const;
  /// Fingerprint of text[i..i+len) in O(sample_rate).
  u64 FragmentFp(index_t i, index_t len) const;

  const KarpRabinHasher* hasher_;
  index_t sample_rate_;
  std::vector<u64> samples_;  // samples_[k] = fp(text[0 .. k*s)).
};

}  // namespace usi

#endif  // USI_SUFFIX_LCE_HPP_
