#include "usi/text/alphabet.hpp"

#include <algorithm>

namespace usi {

Alphabet Alphabet::FromRaw(const std::string& raw) {
  bool present[256] = {};
  for (char c : raw) present[static_cast<u8>(c)] = true;
  Alphabet alphabet;
  for (int b = 0; b < 256; ++b) {
    if (present[b]) {
      alphabet.to_compact_[b] = static_cast<u16>(alphabet.to_raw_.size());
      alphabet.to_raw_.push_back(static_cast<u8>(b));
    }
  }
  return alphabet;
}

Alphabet Alphabet::Identity(u32 sigma) {
  USI_CHECK(sigma <= 256);
  Alphabet alphabet;
  for (u32 b = 0; b < sigma; ++b) {
    alphabet.to_compact_[b] = static_cast<u16>(b);
    alphabet.to_raw_.push_back(static_cast<u8>(b));
  }
  return alphabet;
}

Text Alphabet::EncodeString(const std::string& raw) const {
  Text text;
  text.reserve(raw.size());
  for (char c : raw) text.push_back(Encode(static_cast<u8>(c)));
  return text;
}

std::string Alphabet::DecodeText(const Text& text) const {
  std::string raw;
  raw.reserve(text.size());
  for (Symbol s : text) raw.push_back(static_cast<char>(Decode(s)));
  return raw;
}

u32 EffectiveSigma(const Text& text) {
  bool present[256] = {};
  for (Symbol s : text) present[s] = true;
  u32 sigma = 0;
  for (bool p : present) sigma += p ? 1 : 0;
  return sigma;
}

}  // namespace usi
