#ifndef USI_TEXT_WEIGHTED_STRING_HPP_
#define USI_TEXT_WEIGHTED_STRING_HPP_

/// \file weighted_string.hpp
/// The weighted string (S, w) of Section III: a text plus one real utility
/// per position. This is the input object of every index in the library.

#include <string>
#include <utility>
#include <vector>

#include "usi/text/alphabet.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// A text S with a utility w[i] for every position i (Section III). Immutable
/// after construction; DynamicUsi works on its own growable copy.
class WeightedString {
 public:
  WeightedString() = default;

  /// Takes ownership of \p text and \p weights; they must have equal length.
  WeightedString(Text text, std::vector<double> weights)
      : text_(std::move(text)), weights_(std::move(weights)) {
    USI_CHECK(text_.size() == weights_.size());
  }

  /// Convenience: uniform weight for every position.
  static WeightedString WithUniformWeights(Text text, double weight = 1.0) {
    std::vector<double> weights(text.size(), weight);
    return WeightedString(std::move(text), std::move(weights));
  }

  /// Text length n.
  index_t size() const { return static_cast<index_t>(text_.size()); }

  /// Whether the string is empty.
  bool empty() const { return text_.empty(); }

  /// Letter at position \p i.
  Symbol letter(index_t i) const {
    USI_DCHECK(i < text_.size());
    return text_[i];
  }

  /// Utility of position \p i.
  double weight(index_t i) const {
    USI_DCHECK(i < weights_.size());
    return weights_[i];
  }

  /// Underlying text.
  const Text& text() const { return text_; }

  /// Underlying weights.
  const std::vector<double>& weights() const { return weights_; }

  /// Copy of the fragment S[i .. i+len-1].
  Text Fragment(index_t i, index_t len) const {
    USI_DCHECK(i + len <= text_.size());
    return Text(text_.begin() + i, text_.begin() + i + len);
  }

  /// Prefix (S[0..len-1], w[0..len-1]) as a new weighted string.
  WeightedString Prefix(index_t len) const {
    USI_DCHECK(len <= size());
    return WeightedString(Text(text_.begin(), text_.begin() + len),
                          std::vector<double>(weights_.begin(), weights_.begin() + len));
  }

  /// Heap footprint in bytes (text + weights).
  std::size_t SizeInBytes() const {
    return text_.capacity() * sizeof(Symbol) +
           weights_.capacity() * sizeof(double);
  }

 private:
  Text text_;
  std::vector<double> weights_;
};

}  // namespace usi

#endif  // USI_TEXT_WEIGHTED_STRING_HPP_
