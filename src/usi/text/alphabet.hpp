#ifndef USI_TEXT_ALPHABET_HPP_
#define USI_TEXT_ALPHABET_HPP_

/// \file alphabet.hpp
/// Symbol representation and alphabet remapping.
///
/// The paper assumes an integer alphabet [0, sigma). All five evaluation
/// datasets have sigma <= 95, so the library stores texts as byte sequences;
/// Alphabet remaps arbitrary byte data to the compact effective alphabet and
/// back (e.g. 'A','C','G','T' -> 0..3).

#include <array>
#include <string>
#include <vector>

#include "usi/util/common.hpp"

namespace usi {

/// A letter of the text. Effective alphabets in this library fit in a byte.
using Symbol = u8;

/// A text: sequence of symbols over [0, sigma).
using Text = std::vector<Symbol>;

/// Bidirectional mapping between raw byte values and the compact effective
/// alphabet [0, sigma).
class Alphabet {
 public:
  Alphabet() { to_compact_.fill(kUnmapped); }

  /// Builds the effective alphabet of \p raw (symbols sorted by byte value).
  static Alphabet FromRaw(const std::string& raw);

  /// Identity alphabet over [0, sigma).
  static Alphabet Identity(u32 sigma);

  /// Number of distinct symbols.
  u32 sigma() const { return static_cast<u32>(to_raw_.size()); }

  /// Maps a raw byte to its compact symbol; byte must belong to the alphabet
  /// (check with Contains first). Always enforced: silently aliasing an
  /// unmapped byte to a valid symbol would fabricate pattern matches, and
  /// encoding is never on a per-query hot path.
  Symbol Encode(u8 raw) const {
    USI_CHECK(to_compact_[raw] != kUnmapped);
    return static_cast<Symbol>(to_compact_[raw]);
  }

  /// Maps a compact symbol back to its raw byte.
  u8 Decode(Symbol symbol) const {
    USI_DCHECK(symbol < to_raw_.size());
    return to_raw_[symbol];
  }

  /// Whether the raw byte belongs to the alphabet.
  bool Contains(u8 raw) const { return to_compact_[raw] != kUnmapped; }

  /// Encodes a whole string.
  Text EncodeString(const std::string& raw) const;

  /// Decodes a whole text.
  std::string DecodeText(const Text& text) const;

 private:
  // The sentinel lives outside [0, 256) so a full 256-symbol alphabet (every
  // byte value present, compact code 255 included) is still representable.
  static constexpr u16 kUnmapped = 0x100;

  std::array<u16, 256> to_compact_;
  std::vector<u8> to_raw_;
};

/// Returns the number of distinct symbols actually used in \p text.
u32 EffectiveSigma(const Text& text);

}  // namespace usi

#endif  // USI_TEXT_ALPHABET_HPP_
