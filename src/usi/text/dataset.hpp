#ifndef USI_TEXT_DATASET_HPP_
#define USI_TEXT_DATASET_HPP_

/// \file dataset.hpp
/// Named dataset registry and default experiment parameters.
///
/// Mirrors Table II of the paper: every dataset has a canonical size, a K
/// sweep, a default K, and an s sweep with a default s. The benches iterate
/// this registry so each figure's rows match the paper's panels.

#include <string>
#include <vector>

#include "usi/text/weighted_string.hpp"

namespace usi {

/// One Table II row, scaled to laptop size.
struct DatasetSpec {
  std::string name;          ///< ADV / IOT / XML / HUM / ECOLI.
  index_t default_n;         ///< Canonical length of the synthetic stand-in.
  u32 sigma;                 ///< Alphabet size (matches the paper).
  std::vector<index_t> k_sweep;   ///< Top-K values to test (Fig. 3a-e, 6a-e).
  index_t default_k;         ///< Bold value in Table II, scaled.
  std::vector<u32> s_sweep;  ///< Sampling rounds to test (Fig. 3j, 4, 5).
  u32 default_s;             ///< Bold value in Table II.
  u64 seed;                  ///< Generator seed (printed by the benches).
};

/// All five dataset specs, in the paper's order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Looks up a spec by name; aborts on unknown name.
const DatasetSpec& DatasetSpecByName(const std::string& name);

/// Materializes the synthetic stand-in for \p spec at length \p n
/// (n = 0 means spec.default_n).
WeightedString MakeDataset(const DatasetSpec& spec, index_t n = 0);

/// Loads a raw byte file as a weighted string with utilities drawn uniformly
/// from {0.7, 0.75, ..., 1.0} (the paper's recipe for corpora without real
/// utilities). The text is re-encoded over its effective alphabet; callers
/// that query with raw byte patterns need \p alphabet_out to encode them the
/// same way. Returns false if the file cannot be read.
bool LoadTextFile(const std::string& path, u64 seed, WeightedString* out,
                  Alphabet* alphabet_out = nullptr);

}  // namespace usi

#endif  // USI_TEXT_DATASET_HPP_
