#ifndef USI_TEXT_GENERATORS_HPP_
#define USI_TEXT_GENERATORS_HPP_

/// \file generators.hpp
/// Deterministic synthetic weighted-string generators.
///
/// The paper evaluates on five real corpora (Table II) that are not
/// redistributable offline; each generator below reproduces the *structural*
/// properties the algorithms are sensitive to — alphabet size, repeat
/// structure, and utility distribution — at laptop scale. See DESIGN.md
/// Section 3 for the substitution argument.

#include "usi/text/weighted_string.hpp"
#include "usi/util/common.hpp"

namespace usi {

/// DNA-like text (HUM stand-in): sigma = 4, order-2 Markov chain with planted
/// mid-length repeats; utilities are Phred-style confidence scores in [0, 1],
/// skewed towards 1 (Ewing et al., as cited in Section I).
WeightedString MakeDnaLike(index_t n, u64 seed);

/// Genome-like text with heavier repeat content (ECOLI stand-in): sigma = 4,
/// long duplicated segments with point mutations; confidence-score utilities.
WeightedString MakeEcoliLike(index_t n, u64 seed);

/// Sensor-reading text (IOT stand-in): sigma = 63, dominated by very long
/// repeated blocks (the paper reports frequent substrings of length > 10^4);
/// utilities are RSSI values normalized to [0, 1].
WeightedString MakeIotLike(index_t n, u64 seed);

/// Markup text (XML stand-in): sigma ~ 90 printable characters arranged as
/// nested tags with repeated element names; utilities drawn uniformly from
/// {0.7, 0.75, ..., 1.0} exactly as the paper assigns to XML.
WeightedString MakeXmlLike(index_t n, u64 seed);

/// Advertisement-category text (ADV stand-in): sigma = 14 categories with a
/// Zipfian marginal and bursty runs (campaign flights); utilities are
/// CTR-like: a base rate of 0.1 with heavy-tailed spikes, mirroring Fig. 1.
WeightedString MakeAdvLike(index_t n, u64 seed);

/// Uniform random text over [0, sigma); utilities uniform in [0, 1]. Used by
/// property tests and the random-string remarks of Section IV (footnote 1).
WeightedString MakeRandom(index_t n, u32 sigma, u64 seed);

/// The adversarial periodic string (AB)^{n/2} from Section VII on which
/// SubstringHK and Top-K Trie provably fail; unit utilities.
WeightedString MakePeriodic(index_t n, u32 period, u64 seed);

}  // namespace usi

#endif  // USI_TEXT_GENERATORS_HPP_
