#include "usi/text/dataset.hpp"

#include <cstdio>

#include "usi/text/generators.hpp"
#include "usi/util/rng.hpp"

namespace usi {

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  // Sizes are the paper's scaled down ~100-2000x so every figure regenerates
  // in minutes on a laptop; K and s sweeps keep the paper's *ratios* (K
  // roughly n/100 .. n/10, s in O(log n)).
  static const std::vector<DatasetSpec> kSpecs = {
      {"ADV", 218'987, 14, {2'000, 3'000, 4'000, 5'000, 6'000}, 6'000,
       {2, 4, 6, 8}, 6, 0xADF001},
      {"IOT", 400'000, 63, {500, 1'000, 2'000, 4'000, 8'000}, 4'000,
       {5, 10, 20, 40, 80}, 20, 0x107002},
      {"XML", 600'000, 95, {600, 1'500, 3'000, 6'000, 12'000}, 6'000,
       {4, 6, 20, 40, 80}, 6, 0x3A1003},
      {"HUM", 1'000'000, 4, {1'250, 2'500, 5'000, 10'000, 20'000}, 10'000,
       {4, 6, 20, 40, 80}, 6, 0x404004},
      {"ECOLI", 1'200'000, 4, {4'000, 8'000, 12'000, 16'000, 20'000}, 12'000,
       {6, 8, 20, 40, 80}, 8, 0xEC0005},
  };
  return kSpecs;
}

const DatasetSpec& DatasetSpecByName(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.name == name) return spec;
  }
  std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
  std::abort();
}

WeightedString MakeDataset(const DatasetSpec& spec, index_t n) {
  if (n == 0) n = spec.default_n;
  if (spec.name == "ADV") return MakeAdvLike(n, spec.seed);
  if (spec.name == "IOT") return MakeIotLike(n, spec.seed);
  if (spec.name == "XML") return MakeXmlLike(n, spec.seed);
  if (spec.name == "HUM") return MakeDnaLike(n, spec.seed);
  if (spec.name == "ECOLI") return MakeEcoliLike(n, spec.seed);
  std::fprintf(stderr, "unknown dataset: %s\n", spec.name.c_str());
  std::abort();
}

bool LoadTextFile(const std::string& path, u64 seed, WeightedString* out,
                  Alphabet* alphabet_out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  std::string raw;
  char buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    raw.append(buffer, got);
  }
  std::fclose(file);
  const Alphabet alphabet = Alphabet::FromRaw(raw);
  Text text = alphabet.EncodeString(raw);
  if (alphabet_out != nullptr) *alphabet_out = alphabet;
  Rng rng(seed);
  std::vector<double> weights(text.size());
  for (auto& w : weights) w = 0.7 + 0.05 * static_cast<double>(rng.UniformBelow(7));
  *out = WeightedString(std::move(text), std::move(weights));
  return true;
}

}  // namespace usi
