#include "usi/text/generators.hpp"

#include <algorithm>
#include <cmath>

#include "usi/util/rng.hpp"

namespace usi {
namespace {

/// Phred-style confidence in [0,1]: most bases are called with high
/// confidence, a minority with low confidence (read ends, homopolymers).
double PhredLikeWeight(Rng* rng) {
  const double x = rng->UniformDouble();
  if (x < 0.80) return 0.90 + 0.10 * rng->UniformDouble();   // high confidence
  if (x < 0.95) return 0.60 + 0.30 * rng->UniformDouble();   // medium
  return 0.05 + 0.55 * rng->UniformDouble();                 // low (error-prone)
}

/// Copies text[src .. src+len) onto the end of text, mutating each copied
/// letter with probability mutation_rate.
void AppendRepeat(Text* text, index_t src, index_t len, u32 sigma,
                  double mutation_rate, Rng* rng) {
  for (index_t k = 0; k < len; ++k) {
    Symbol s = (*text)[src + k];
    if (rng->Bernoulli(mutation_rate)) {
      s = static_cast<Symbol>(rng->UniformBelow(sigma));
    }
    text->push_back(s);
  }
}

}  // namespace

WeightedString MakeDnaLike(index_t n, u64 seed) {
  Rng rng(seed);
  Text text;
  text.reserve(n);
  // Order-2 Markov chain with a random but fixed transition structure: each
  // context prefers two of the four nucleotides, which creates the skewed
  // k-mer spectrum real genomes have.
  u8 preferred[16][2];
  for (auto& row : preferred) {
    row[0] = static_cast<u8>(rng.UniformBelow(4));
    row[1] = static_cast<u8>(rng.UniformBelow(4));
  }
  u32 context = 0;
  while (text.size() < n) {
    // Occasionally copy an earlier segment (tandem/interspersed repeats).
    if (text.size() > 1000 && rng.Bernoulli(0.002)) {
      const index_t max_len = std::min<index_t>(
          500, static_cast<index_t>(n - text.size()));
      if (max_len >= 20) {
        const index_t len = static_cast<index_t>(rng.UniformInRange(20, max_len));
        const index_t src =
            static_cast<index_t>(rng.UniformBelow(text.size() - len));
        AppendRepeat(&text, src, len, 4, 0.01, &rng);
        continue;
      }
    }
    Symbol next;
    const double x = rng.UniformDouble();
    if (x < 0.42) {
      next = preferred[context][0];
    } else if (x < 0.76) {
      next = preferred[context][1];
    } else {
      next = static_cast<Symbol>(rng.UniformBelow(4));
    }
    text.push_back(next);
    context = ((context << 2) | next) & 15;
  }
  text.resize(n);
  std::vector<double> weights(n);
  for (auto& w : weights) w = PhredLikeWeight(&rng);
  return WeightedString(std::move(text), std::move(weights));
}

WeightedString MakeEcoliLike(index_t n, u64 seed) {
  Rng rng(seed ^ 0xEC011ULL);
  Text text;
  text.reserve(n);
  // Seed segment, then heavy segmental duplication: bacterial assemblies from
  // long reads contain many near-identical operon-scale copies.
  const index_t kSeedLen = std::min<index_t>(n, std::max<index_t>(n / 20, 64));
  for (index_t i = 0; i < kSeedLen; ++i) {
    text.push_back(static_cast<Symbol>(rng.UniformBelow(4)));
  }
  while (text.size() < n) {
    if (rng.Bernoulli(0.85)) {
      const index_t remaining = static_cast<index_t>(n - text.size());
      const index_t want = static_cast<index_t>(
          rng.UniformInRange(50, 2000));
      const index_t len =
          std::min<index_t>(want, std::min<index_t>(
                                      remaining, static_cast<index_t>(text.size())));
      if (len > 0) {
        const index_t src =
            static_cast<index_t>(rng.UniformBelow(text.size() - len + 1));
        AppendRepeat(&text, src, len, 4, 0.005, &rng);
        continue;
      }
    }
    text.push_back(static_cast<Symbol>(rng.UniformBelow(4)));
  }
  text.resize(n);
  std::vector<double> weights(n);
  for (auto& w : weights) w = PhredLikeWeight(&rng);
  return WeightedString(std::move(text), std::move(weights));
}

WeightedString MakeIotLike(index_t n, u64 seed) {
  Rng rng(seed ^ 0x107ULL);
  constexpr u32 kSigma = 63;
  Text text;
  text.reserve(n);
  // Sensor traces repeat long stable-state blocks nearly verbatim (the paper
  // finds top frequent substrings of length ~10^4 in IOT). Build a small pool
  // of long "state blocks" and emit them with occasional noise letters.
  const index_t block_len = std::max<index_t>(64, n / 200);
  std::vector<Text> blocks;
  for (int b = 0; b < 6; ++b) {
    Text block(block_len);
    // Each block is a slowly-varying reading: random walk over the alphabet.
    int level = static_cast<int>(rng.UniformBelow(kSigma));
    for (auto& s : block) {
      level += static_cast<int>(rng.UniformBelow(3)) - 1;
      level = std::clamp(level, 0, static_cast<int>(kSigma) - 1);
      s = static_cast<Symbol>(level);
    }
    blocks.push_back(std::move(block));
  }
  while (text.size() < n) {
    if (rng.Bernoulli(0.9)) {
      const Text& block = blocks[rng.UniformBelow(blocks.size())];
      for (Symbol s : block) {
        if (text.size() >= n) break;
        text.push_back(s);
      }
    } else {
      const index_t burst = static_cast<index_t>(rng.UniformInRange(1, 40));
      for (index_t k = 0; k < burst && text.size() < n; ++k) {
        text.push_back(static_cast<Symbol>(rng.UniformBelow(kSigma)));
      }
    }
  }
  std::vector<double> weights(n);
  // RSSI in dBm ~ [-100, -30] normalized to [0, 1]; correlated in time.
  double rssi = rng.UniformDouble();
  for (auto& w : weights) {
    rssi += 0.05 * (rng.UniformDouble() - 0.5);
    rssi = std::clamp(rssi, 0.0, 1.0);
    w = rssi;
  }
  return WeightedString(std::move(text), std::move(weights));
}

WeightedString MakeXmlLike(index_t n, u64 seed) {
  Rng rng(seed ^ 0x3A11ULL);
  static const char* kTags[] = {"article", "author", "title",  "year",
                                "journal", "volume", "cite",   "editor",
                                "booktitle", "pages"};
  constexpr int kNumTags = 10;
  static const char kWordChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string raw;
  raw.reserve(n + 64);
  std::vector<int> stack;
  while (raw.size() < n) {
    const double x = rng.UniformDouble();
    if ((x < 0.35 && stack.size() < 6) || stack.empty()) {
      const int tag = static_cast<int>(rng.UniformBelow(kNumTags));
      raw += '<';
      raw += kTags[tag];
      raw += '>';
      stack.push_back(tag);
    } else if (x < 0.55) {
      raw += "</";
      raw += kTags[stack.back()];
      raw += '>';
      stack.pop_back();
    } else {
      const int words = static_cast<int>(rng.UniformInRange(1, 4));
      for (int w = 0; w < words; ++w) {
        const int len = static_cast<int>(rng.UniformInRange(2, 9));
        for (int k = 0; k < len; ++k) {
          raw += kWordChars[rng.UniformBelow(sizeof(kWordChars) - 1)];
        }
        raw += ' ';
      }
    }
  }
  raw.resize(n);
  const Alphabet alphabet = Alphabet::FromRaw(raw);
  Text text = alphabet.EncodeString(raw);
  // Paper: "we selected each utility uniformly at random from
  // {0.7, 0.75, ..., 1}" for XML and HUM.
  std::vector<double> weights(n);
  for (auto& w : weights) w = 0.7 + 0.05 * static_cast<double>(rng.UniformBelow(7));
  return WeightedString(std::move(text), std::move(weights));
}

WeightedString MakeAdvLike(index_t n, u64 seed) {
  Rng rng(seed ^ 0xADFULL);
  constexpr u32 kSigma = 14;
  // Zipfian category popularity.
  double zipf[kSigma];
  double total = 0;
  for (u32 c = 0; c < kSigma; ++c) {
    zipf[c] = 1.0 / static_cast<double>(c + 1);
    total += zipf[c];
  }
  for (auto& z : zipf) z /= total;
  Text text;
  text.reserve(n);
  // Campaign flights: a chosen category (or short category motif) repeats in
  // a burst, then the stream drifts — this plants frequent length-3+ motifs.
  while (text.size() < n) {
    const double x = rng.UniformDouble();
    if (x < 0.30) {
      // Motif burst: 2-4 categories cycled several times.
      const int motif_len = static_cast<int>(rng.UniformInRange(2, 4));
      Symbol motif[4];
      for (int k = 0; k < motif_len; ++k) {
        motif[k] = static_cast<Symbol>(rng.UniformBelow(kSigma));
      }
      const int reps = static_cast<int>(rng.UniformInRange(2, 10));
      for (int r = 0; r < reps && text.size() < n; ++r) {
        for (int k = 0; k < motif_len && text.size() < n; ++k) {
          text.push_back(motif[k]);
        }
      }
    } else {
      double pick = rng.UniformDouble();
      Symbol s = kSigma - 1;
      for (u32 c = 0; c < kSigma; ++c) {
        if (pick < zipf[c]) {
          s = static_cast<Symbol>(c);
          break;
        }
        pick -= zipf[c];
      }
      text.push_back(s);
    }
  }
  text.resize(n);
  // CTR is category-dependent: popular categories (low index under the Zipf
  // marginal) are cheap commodity placements, niche categories convert far
  // better — this is what makes the paper's Table I case study interesting
  // (top-by-utility differs from top-by-frequency).
  std::vector<double> weights(n);
  for (index_t i = 0; i < n; ++i) {
    const double niche =
        static_cast<double>(text[i]) / static_cast<double>(kSigma - 1);
    const double spike_probability = 0.01 + 0.35 * niche * niche;
    weights[i] = rng.Bernoulli(spike_probability)
                     ? static_cast<double>(rng.UniformInRange(
                           10, 40 + static_cast<u64>(100 * niche)))
                     : 0.1;
  }
  return WeightedString(std::move(text), std::move(weights));
}

WeightedString MakeRandom(index_t n, u32 sigma, u64 seed) {
  USI_CHECK(sigma >= 1 && sigma <= 256);
  Rng rng(seed ^ 0x5EEDULL);
  Text text(n);
  for (auto& s : text) s = static_cast<Symbol>(rng.UniformBelow(sigma));
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.UniformDouble();
  return WeightedString(std::move(text), std::move(weights));
}

WeightedString MakePeriodic(index_t n, u32 period, u64 seed) {
  USI_CHECK(period >= 1 && period <= 256);
  Rng rng(seed);
  Text text(n);
  for (index_t i = 0; i < n; ++i) {
    text[i] = static_cast<Symbol>(i % period);
  }
  std::vector<double> weights(n, 1.0);
  (void)rng;
  return WeightedString(std::move(text), std::move(weights));
}

}  // namespace usi
