#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Validates every inline markdown link in README.md, ROADMAP.md and docs/
(plus any extra files passed on the command line):

  * relative file links must resolve to an existing file or directory
    (relative to the markdown file that contains them);
  * same-file and cross-file heading anchors (#fragment) must match a
    heading in the target file, using GitHub's slug rules;
  * absolute http(s)/mailto links are *not* fetched (CI must not depend on
    the network) — they are only reported with --list-external.

Runs as the `docs_link_check` CTest entry and the docs-link-check CI job,
so a broken link fails the build instead of rotting silently.

Usage: check_links.py [--root DIR] [--list-external] [extra.md ...]
"""

import argparse
import pathlib
import re
import sys

# Inline links: [text](target). Images ![alt](target) match too via the
# optional leading '!', which we treat identically (the file must exist).
LINK_RE = re.compile(r"!?\[(?:[^\]\\]|\\.)*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def strip_fenced_blocks(text: str) -> str:
    """Blanks out fenced code blocks so their contents are never parsed."""
    out = []
    in_fence = False
    fence = None
    for line in text.splitlines():
        match = FENCE_RE.match(line)
        if match:
            if not in_fence:
                in_fence, fence = True, match.group(1)
            elif match.group(1) == fence:
                in_fence, fence = False, None
            out.append("")
            continue
        out.append("" if in_fence else line)
    return "\n".join(out)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->hyphens."""
    # Strip inline markup that does not contribute to the slug.
    heading = re.sub(r"[*_`]", "", heading)
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # links
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def heading_slugs(path: pathlib.Path) -> set:
    slugs = set()
    counts = {}
    for line in strip_fenced_blocks(path.read_text(encoding="utf-8")).splitlines():
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(md: pathlib.Path, root: pathlib.Path, list_external: bool):
    errors = []
    externals = []
    text = strip_fenced_blocks(md.read_text(encoding="utf-8"))
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                externals.append((md, lineno, target))
                continue
            if target.startswith("#"):
                if github_slug(target[1:]) not in heading_slugs(md):
                    errors.append((md, lineno, target, "no such heading"))
                continue
            path_part, _, fragment = target.partition("#")
            resolved = (md.parent / path_part).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                errors.append((md, lineno, target, "escapes the repository"))
                continue
            if not resolved.exists():
                errors.append((md, lineno, target, "missing file"))
                continue
            if fragment and resolved.is_file() and resolved.suffix == ".md":
                if github_slug(fragment) not in heading_slugs(resolved):
                    errors.append((md, lineno, target, "no such heading"))
    if list_external:
        for md_path, lineno, target in externals:
            print(f"external: {md_path}:{lineno}: {target}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--list-external", action="store_true",
                        help="print (unchecked) http/https links")
    parser.add_argument("extra", nargs="*", help="additional markdown files")
    args = parser.parse_args()

    root = pathlib.Path(args.root)
    files = [root / "README.md", root / "ROADMAP.md"]
    files += sorted((root / "docs").glob("**/*.md"))
    files += [pathlib.Path(f) for f in args.extra]

    missing = [f for f in files if not f.is_file()]
    if missing:
        for f in missing:
            print(f"error: expected markdown file is absent: {f}")
        return 1

    errors = []
    checked = 0
    for md in files:
        errors += check_file(md, root, args.list_external)
        checked += 1
    for md, lineno, target, why in errors:
        print(f"error: {md}:{lineno}: broken link '{target}' ({why})")
    print(f"checked {checked} file(s): "
          f"{'FAILED' if errors else 'all links resolve'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
