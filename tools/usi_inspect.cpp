// usi_inspect — operator tooling for persisted UsiIndex files.
//
//   usi_inspect info <file> [--deep]
//       Dumps the header (and, for v3, the section directory) of an index
//       file and validates it: magic/version, header checksum, directory
//       geometry, exact file size. --deep also re-checksums every v3
//       section payload. Valid files additionally get the degraded-tier
//       block: the per-text tier UsiMultiService attaches at registration
//       (cache capacity and hit rate, sketch width/depth/epsilon, learned
//       mass, footprint). Exit 0 = valid, 1 = corrupt/unreadable.
//
//   usi_inspect convert <in> <out> (--to v2|v3)
//                       (--dataset NAME [--n N] | --text FILE [--seed S])
//       Re-serializes an index in the other format. Conversion must load
//       the index, and index files do not embed the text — so the weighted
//       string has to be re-materialized the same way it was at build time:
//       either a registry dataset (--dataset, deterministic stand-in) or a
//       raw text file with the paper's synthetic-utility recipe (--text,
//       same --seed as the original run).
//
//   usi_inspect selftest
//       End-to-end check run by CTest: builds a small index, saves both
//       formats, validates them through the info path, converts v3->v2->v3,
//       verifies the round trip is byte-identical with matching query
//       answers, and drives the degraded tier (exact batches feed it, the
//       cache rung replays them exactly, the sketch rung honors its bound,
//       and a deadline-expired allow_degraded batch serves from it).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "usi/core/degraded_tier.hpp"
#include "usi/core/index_format.hpp"
#include "usi/core/multi_service.hpp"
#include "usi/core/usi_index.hpp"
#include "usi/parallel/thread_pool.hpp"
#include "usi/text/dataset.hpp"
#include "usi/util/binary_io.hpp"
#include "usi/util/failpoint.hpp"
#include "usi/util/mapped_file.hpp"

namespace usi {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  usi_inspect info <file> [--deep]\n"
      "  usi_inspect convert <in> <out> --to v2|v3\n"
      "              (--dataset NAME [--n N] | --text FILE [--seed S])\n"
      "  usi_inspect failpoints\n"
      "  usi_inspect selftest\n");
  return 2;
}

const char* KindName(u8 kind) {
  switch (kind) {
    case 0: return "sum";
    case 1: return "max";
    case 2: return "count";
    default: return "?";
  }
}

const char* MinerName(u8 miner) {
  return miner == 0 ? "UET" : miner == 1 ? "UAT" : "?";
}

const char* SectionName(u32 id) {
  switch (id) {
    case format_v3::kSuffixArray: return "suffix_array";
    case format_v3::kPrefixSums: return "prefix_sums";
    case format_v3::kTableCtrl: return "table_ctrl";
    case format_v3::kTableSlots: return "table_slots";
    default: return "?";
  }
}

/// Prints one degraded-tier telemetry snapshot: the per-text stats block of
/// `info` and the traffic report of `selftest`.
void PrintDegradedTier(const DegradedTierStats& s) {
  std::printf("  cache:       %zu/%zu slots, hit rate %.1f%% over %llu "
              "lookups\n",
              s.cache_size, s.cache_capacity, 100.0 * s.CacheHitRate(),
              static_cast<unsigned long long>(s.lookups));
  std::printf("  sketch:      %zu x %zu (epsilon %.3g, bound = epsilon * "
              "mass)\n",
              s.sketch_width, s.sketch_depth, s.epsilon);
  std::printf("  learned:     %zu/%zu keys, mass %.1f, %llu records "
              "(%llu dropped)\n",
              s.sketched_keys, s.max_sketched_keys, s.sketch_mass,
              static_cast<unsigned long long>(s.records),
              static_cast<unsigned long long>(s.record_drops));
}

/// Prints one text's update-tier telemetry: the live delta overlay (size,
/// window, staleness) and the compaction history behind it.
void PrintUpdateTier(const UsiTextStats& s) {
  std::printf("  appends:     %llu absorbed, %llu compactions (last publish "
              "pause %.1f us)\n",
              static_cast<unsigned long long>(s.appends),
              static_cast<unsigned long long>(s.compactions),
              static_cast<double>(s.compact_publish_ns) / 1e3);
  if (!s.delta.has_value()) {
    std::printf("  delta:       none (all appends folded into the base)\n");
    return;
  }
  std::printf("  delta:       %u pending past boundary %u (window %u, "
              "staleness %u, %zu KiB, epoch %llu)\n",
              s.delta->appended, s.delta->boundary, s.delta->window,
              s.delta->staleness, s.delta->bytes / 1024,
              static_cast<unsigned long long>(s.delta->epoch));
}

/// Prints a failure verdict tagged with the typed load-error code the
/// loaders would report for the same refusal, then returns exit code 1.
int Reject(LoadErrorCode code, const char* detail) {
  std::printf("verdict:       REJECTED [%s] %s\n", LoadErrorCodeName(code),
              detail);
  return 1;
}

/// info for a v3 file: print the full header + directory, then validate
/// exactly what OpenMapped validates (sans the text-length check, which
/// needs the weighted string). Returns process exit code.
int InfoV3(const std::string& path, bool deep) {
  using namespace format_v3;
  const std::unique_ptr<MappedFile> mapping = MappedFile::OpenReadOnly(path);
  if (mapping == nullptr || mapping->size() < sizeof(FileHeader)) {
    std::fprintf(stderr, "error: cannot map %s (or too small)\n",
                 path.c_str());
    return 1;
  }
  FileHeader header;
  std::memcpy(&header, mapping->data(), sizeof(header));

  std::printf("format:        v3 mapped (magic 0x%08X, version %u)\n",
              header.magic, header.version);
  std::printf("file_bytes:    %llu\n",
              static_cast<unsigned long long>(header.file_bytes));
  std::printf("n:             %u\n", header.n);
  std::printf("utility kind:  %s\n", KindName(header.kind));
  std::printf("miner:         %s\n", MinerName(header.miner));
  std::printf("kr base:       0x%llX\n",
              static_cast<unsigned long long>(header.base));
  std::printf("K:             %llu\n", static_cast<unsigned long long>(header.k));
  std::printf("tau_K:         %u\n", header.tau_k);
  std::printf("num_lengths:   %u\n", header.num_lengths);
  std::printf("table:         %llu entries in %llu slots (%llu B/slot)\n",
              static_cast<unsigned long long>(header.table_size),
              static_cast<unsigned long long>(header.table_capacity),
              static_cast<unsigned long long>(header.slot_bytes));
  std::printf("sections:\n");
  std::printf("  %-14s %12s %12s  %s\n", "id", "offset", "length", "checksum");
  for (std::size_t s = 0; s < kNumSections; ++s) {
    const SectionEntry& section = header.sections[s];
    std::printf("  %-14s %12llu %12llu  %016llX\n", SectionName(section.id),
                static_cast<unsigned long long>(section.offset),
                static_cast<unsigned long long>(section.length),
                static_cast<unsigned long long>(section.checksum));
  }
  LearnedSectionEntry ext;
  std::memcpy(&ext, mapping->data() + sizeof(FileHeader), sizeof(ext));
  if (ext.ext_magic == 0) {
    std::printf("learned:       absent (misses answered by plain binary "
                "search)\n");
  } else {
    std::printf("learned:       present (epsilon %u, %llu segments, %llu B "
                "at offset %llu)\n",
                ext.epsilon, static_cast<unsigned long long>(ext.num_segments),
                static_cast<unsigned long long>(ext.length),
                static_cast<unsigned long long>(ext.offset));
  }

  // Validation, mirroring OpenMapped's order and severity.
  if (header.header_checksum !=
      Checksum64(&header, offsetof(FileHeader, header_checksum))) {
    return Reject(LoadErrorCode::kCorrupt, "(header checksum mismatch)");
  }
  if (header.file_bytes != mapping->size()) {
    std::printf("file is %zu bytes, header pins %llu\n", mapping->size(),
                static_cast<unsigned long long>(header.file_bytes));
    return Reject(LoadErrorCode::kCorrupt, "(truncated or extended image)");
  }
  u64 expected_offset = kFirstSectionOffset;
  for (std::size_t s = 0; s < kNumSections; ++s) {
    const SectionEntry& section = header.sections[s];
    if (section.id != s || section.offset != expected_offset ||
        section.offset + section.length > header.file_bytes) {
      std::printf("section %zu directory entry is inconsistent\n", s);
      return Reject(LoadErrorCode::kCorrupt, "(section directory)");
    }
    expected_offset = AlignUp(section.offset + section.length);
  }
  const u64 core_end = header.sections[kNumSections - 1].offset +
                       header.sections[kNumSections - 1].length;
  if (ext.ext_magic != 0) {
    if (ext.ext_magic != kLearnedMagic ||
        ext.entry_checksum !=
            Checksum64(&ext, offsetof(LearnedSectionEntry, entry_checksum)) ||
        ext.offset != AlignUp(core_end) || ext.length == 0 ||
        ext.offset + ext.length != header.file_bytes) {
      return Reject(LoadErrorCode::kCorrupt, "(learned extension entry)");
    }
  } else if (header.file_bytes != core_end) {
    return Reject(LoadErrorCode::kCorrupt, "(trailing bytes past last section)");
  }
  if (deep) {
    mapping->AdviseWillNeed();
    for (std::size_t s = 0; s < kNumSections; ++s) {
      const SectionEntry& section = header.sections[s];
      if (Checksum64(mapping->data() + section.offset, section.length) !=
          section.checksum) {
        std::printf("section %s payload checksum mismatch\n",
                    SectionName(section.id));
        return Reject(LoadErrorCode::kCorrupt, "(section payload checksum)");
      }
    }
    if (ext.ext_magic == kLearnedMagic &&
        Checksum64(mapping->data() + ext.offset, ext.length) != ext.checksum) {
      return Reject(LoadErrorCode::kCorrupt, "(learned payload checksum)");
    }
    std::printf("verdict:       OK (deep: all section payloads verified)\n");
  } else {
    std::printf("verdict:       OK (shallow: header + directory verified)\n");
  }
  return 0;
}

/// info for a v2 stream file: parse the packed header and the two array
/// length prefixes. Returns process exit code.
int InfoV2(const std::string& path) {
  BinaryReader reader(path);
  u32 magic = 0, version = 0, n = 0;
  u8 kind = 0, miner = 0;
  u64 base = 0, k = 0;
  u32 tau_k = 0, num_lengths = 0;
  if (!reader.Read(&magic) || !reader.Read(&version) || !reader.Read(&n) ||
      !reader.Read(&kind) || !reader.Read(&miner) || !reader.Read(&base) ||
      !reader.Read(&k) || !reader.Read(&tau_k) || !reader.Read(&num_lengths)) {
    std::fprintf(stderr, "error: truncated v2 header in %s\n", path.c_str());
    return 1;
  }
  std::printf("format:        v2 heap (magic 0x%08X, version %u)\n", magic,
              version);
  std::printf("n:             %u\n", n);
  std::printf("utility kind:  %s\n", KindName(kind));
  std::printf("miner:         %s\n", MinerName(miner));
  std::printf("kr base:       0x%llX\n", static_cast<unsigned long long>(base));
  std::printf("K:             %llu\n", static_cast<unsigned long long>(k));
  std::printf("tau_K:         %u\n", tau_k);
  std::printf("num_lengths:   %u\n", num_lengths);
  if (version != format_v2::kVersion) {
    return Reject(LoadErrorCode::kBadFormat, "(unsupported version)");
  }
  std::vector<index_t> sa;
  if (!reader.ReadVector(&sa) || sa.size() != n) {
    return Reject(LoadErrorCode::kCorrupt, "(suffix array truncated)");
  }
  // The serialized entry record (usi_index.cpp): u64 fp, u32 len,
  // u32 count, double value — 24 bytes.
  struct V2Entry {
    u64 fp;
    u32 len;
    u32 count;
    double value;
  };
  static_assert(sizeof(V2Entry) == 24);
  std::vector<V2Entry> entries;
  if (!reader.ReadVector(&entries)) {
    return Reject(LoadErrorCode::kCorrupt, "(entry array truncated)");
  }
  std::printf("sa entries:    %zu\n", sa.size());
  std::printf("table entries: %zu\n", entries.size());
  if (!reader.ExactlyConsumed()) {
    return Reject(LoadErrorCode::kCorrupt, "(trailing bytes after entry array)");
  }
  std::printf("verdict:       OK\n");
  return 0;
}

int Info(const std::string& path, bool deep) {
  BinaryReader sniff(path);
  u32 magic = 0;
  if (!sniff.Read(&magic)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  if (magic == format_v3::kMagic || magic == format_v2::kMagic) {
    const int rc =
        magic == format_v3::kMagic ? InfoV3(path, deep) : InfoV2(path);
    if (rc == 0) {
      // The serving-side companion of the file: the per-text degradation
      // tier UsiMultiService attaches when this index is registered
      // (default geometry; counters accrue at serve time — query a live
      // service's StatsFor for trafficked numbers).
      const DegradedTier tier(UsiMultiServiceOptions{}.degraded);
      std::printf("degraded tier (attached per text at registration):\n");
      PrintDegradedTier(tier.stats());
      std::printf("  footprint:   %zu KiB\n", tier.SizeInBytes() / 1024);
      // And the update tier: appends land in a per-text delta overlay and
      // compact into fresh generations of this same file format.
      const UsiMultiServiceOptions defaults;
      std::printf("update tier (attached per text at registration):\n");
      std::printf("  delta:       window %u, compaction threshold %u appended "
                  "symbols\n",
                  defaults.delta_context, defaults.delta_compact_threshold);
    }
    return rc;
  }
  std::fprintf(stderr, "error: %s is not a UsiIndex file (magic 0x%08X)\n",
               path.c_str(), magic);
  return Reject(LoadErrorCode::kBadFormat, "(unrecognized magic)");
}

int Convert(const std::string& in, const std::string& out,
            const std::string& to, const std::string& dataset, index_t n,
            const std::string& text_file, u64 seed) {
  IndexFileFormat format;
  if (to == "v2") {
    format = IndexFileFormat::kV2Heap;
  } else if (to == "v3") {
    format = IndexFileFormat::kV3Mapped;
  } else {
    std::fprintf(stderr, "error: --to must be v2 or v3\n");
    return 2;
  }
  WeightedString ws;
  if (!dataset.empty()) {
    ws = MakeDataset(DatasetSpecByName(dataset), n);
  } else if (!text_file.empty()) {
    if (!LoadTextFile(text_file, seed, &ws)) {
      std::fprintf(stderr, "error: cannot read text file %s\n",
                   text_file.c_str());
      return 1;
    }
  } else {
    std::fprintf(stderr,
                 "error: convert needs --dataset NAME or --text FILE to "
                 "re-materialize the weighted string the index borrows\n");
    return 2;
  }
  LoadError load_error;
  const std::unique_ptr<UsiIndex> index =
      UsiIndex::LoadFromFile(ws, in, &load_error);
  if (index == nullptr) {
    std::fprintf(stderr, "error: cannot load %s [%s]: %s\n", in.c_str(),
                 LoadErrorCodeName(load_error.code),
                 load_error.message.c_str());
    return 1;
  }
  if (!index->SaveToFile(out, format)) {
    std::fprintf(stderr, "error: writing %s failed\n", out.c_str());
    return 1;
  }
  std::printf("converted %s (%s) -> %s (%s)\n", in.c_str(),
              index->IsMapped() ? "v3" : "v2", out.c_str(), to.c_str());
  return 0;
}

/// Lists the failpoint sites this binary's library paths register. Sites
/// materialize lazily (first macro evaluation), so a tiny end-to-end pass
/// runs first to touch every site: a staged build, v3 save/open and v2
/// save/load, a multi-service build (pool task + build lane + serve span),
/// and a table-miss query (fallback). Exit 0 when failpoints are compiled
/// in, 3 when the build has them off (macros are no-ops and no site list
/// exists).
int Failpoints() {
  std::printf("compiled in:   %s\n", failpoint::kEnabled ? "yes" : "no");
  if (!failpoint::kEnabled) {
    std::printf("(configure with -DUSI_FAILPOINTS=ON to enable the sites)\n");
    return 3;
  }
  const std::string path = std::string(P_tmpdir) + "/usi_inspect_fp.bin";
  WeightedString ws = MakeDataset(DatasetSpecByName("XML"), 4000);
  UsiOptions options;
  options.k = 50;
  options.threads = 1;
  const UsiIndex index(ws, options);
  if (index.SaveToFile(path, IndexFileFormat::kV3Mapped)) {
    UsiIndex::OpenMapped(ws, path);
    std::remove(path.c_str());
  }
  if (index.SaveToFile(path, IndexFileFormat::kV2Heap)) {
    WeightedString ws_copy = ws;
    UsiIndex::LoadFromFile(std::move(ws_copy), path);
    std::remove(path.c_str());
  }
  index.Query(ws.Fragment(0, 4));
  index.Query(Text(4, Symbol{200}));  // Guaranteed miss: fallback site.
  {
    UsiMultiService service;  // Pool task + build lane + serve span sites.
    service.SubmitText("t", ws);
    service.WaitForBuilds();
    const std::vector<MultiQuery> batch = {{"t", ws.Fragment(0, 4)}};
    service.QueryBatch(batch);
  }
  {
    ThreadPool pool(1);
    pool.Submit([] {}).get();  // Submit's task wrapper hosts pool.task.
  }
  std::printf("sites:\n");
  for (const std::string& name : failpoint::SiteNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(stream),
                           std::istreambuf_iterator<char>());
}

int Selftest() {
  const std::string dir = P_tmpdir;
  const std::string v3_path = dir + "/usi_inspect_selftest_v3.bin";
  const std::string v2_path = dir + "/usi_inspect_selftest_v2.bin";
  const std::string rt_path = dir + "/usi_inspect_selftest_rt.bin";
  const std::string nolearn_path = dir + "/usi_inspect_selftest_nolearn.bin";
  const auto fail = [&](const char* what) {
    std::fprintf(stderr, "selftest FAILED: %s\n", what);
    std::remove(v3_path.c_str());
    std::remove(v2_path.c_str());
    std::remove(rt_path.c_str());
    std::remove(nolearn_path.c_str());
    return 1;
  };

  const WeightedString ws = MakeDataset(DatasetSpecByName("XML"), 20000);
  UsiOptions options;
  options.k = 300;
  const UsiIndex index(ws, options);
  if (!index.SaveToFile(v3_path, IndexFileFormat::kV3Mapped) ||
      !index.SaveToFile(v2_path, IndexFileFormat::kV2Heap)) {
    return fail("save");
  }
  if (Info(v3_path, /*deep=*/true) != 0) return fail("v3 info");
  if (Info(v2_path, /*deep=*/false) != 0) return fail("v2 info");

  // v3 -> v2 -> v3 must land back on the exact original bytes.
  if (Convert(v3_path, rt_path, "v2", "XML", 20000, "", 0) != 0) {
    return fail("v3->v2 convert");
  }
  if (ReadAll(rt_path) != ReadAll(v2_path)) return fail("v3->v2 bytes");
  if (Convert(rt_path, rt_path, "v3", "XML", 20000, "", 0) != 0) {
    return fail("v2->v3 convert");
  }
  if (ReadAll(rt_path) != ReadAll(v3_path)) return fail("v2->v3 bytes");

  // The reopened mapped image answers like the freshly built index; so
  // does a v3 image saved WITHOUT the learned section (the shape every
  // pre-extension file has — it opens, serves misses by plain binary
  // search, and must agree byte-for-byte on every answer).
  const std::unique_ptr<UsiIndex> mapped = UsiIndex::OpenMapped(ws, rt_path);
  if (mapped == nullptr) return fail("reopen");
  if (mapped->learned_sa().empty()) return fail("mapped learned absent");
  UsiIndex::SaveOptions no_learned;
  no_learned.learned_section = false;
  if (!index.SaveToFile(nolearn_path, IndexFileFormat::kV3Mapped,
                        no_learned)) {
    return fail("no-learned save");
  }
  if (Info(nolearn_path, /*deep=*/true) != 0) return fail("no-learned info");
  const std::unique_ptr<UsiIndex> plain =
      UsiIndex::OpenMapped(ws, nolearn_path);
  if (plain == nullptr) return fail("no-learned reopen");
  if (!plain->learned_sa().empty()) return fail("no-learned not plain");
  for (index_t i = 0; i + 6 <= ws.size(); i += 503) {
    const Text pattern = ws.Fragment(i, 6);
    const QueryResult a = index.Query(pattern);
    const QueryResult b = mapped->Query(pattern);
    const QueryResult c = plain->Query(pattern);
    if (a.utility != b.utility || a.occurrences != b.occurrences ||
        a.utility != c.utility || a.occurrences != c.occurrences) {
      return fail("query parity");
    }
  }
  std::remove(v3_path.c_str());
  std::remove(v2_path.c_str());
  std::remove(rt_path.c_str());
  std::remove(nolearn_path.c_str());

  // Degraded-tier coverage: serve an exact batch through a multi-service
  // (which feeds the text's tier), check the tier telemetry surfaces via
  // StatsFor, then re-serve the same batch with an already-expired deadline
  // and allow_degraded — every slot must be filled from the tier, and every
  // tier answer must sit within [exact, exact + error_bound].
  {
    UsiMultiServiceOptions service_options;
    service_options.threads = 1;
    UsiMultiService service(service_options);
    WeightedString ws_copy = ws;
    service.SubmitText("t", std::move(ws_copy));
    if (service.WaitForText("t") != BuildState::kReady) {
      return fail("tier text build");
    }
    std::vector<Text> patterns;
    for (index_t i = 0; i + 6 <= ws.size(); i += 503) {
      patterns.push_back(ws.Fragment(i, 6));
    }
    std::vector<MultiQuery> batch;
    for (const Text& pattern : patterns) batch.push_back({"t", pattern});
    const MultiBatchResult exact_batch = service.QueryBatch(batch);
    if (exact_batch.status != ServeStatus::kOk) return fail("tier exact batch");
    const std::optional<UsiTextStats> before = service.StatsFor("t");
    if (!before.has_value() || !before->degraded.has_value()) {
      return fail("tier stats absent");
    }
    if (before->degraded->records == 0) return fail("tier learned nothing");

    MultiBatchOptions expired;
    expired.deadline =
        std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
    expired.allow_degraded = true;
    std::vector<QueryResult> degraded(batch.size());
    if (service.QueryBatchInto(batch, degraded, expired) !=
        ServeStatus::kDeadlineExceeded) {
      return fail("tier deadline status");
    }
    for (std::size_t i = 0; i < degraded.size(); ++i) {
      const QueryResult& got = degraded[i];
      if (got.provenance == AnswerProvenance::kNone) continue;
      if (got.utility + 1e-9 < exact_batch.results[i].utility ||
          got.utility > exact_batch.results[i].utility + got.error_bound +
                            1e-9) {
        return fail("tier answer outside its bound");
      }
    }
    const DegradedTierStats after = service.StatsFor("t")->degraded.value();
    if (after.lookups == 0 || after.cache_hits + after.sketch_answers == 0) {
      return fail("tier never consulted");
    }
    std::printf("degraded tier after selftest traffic:\n");
    PrintDegradedTier(after);
  }

  // Update-tier coverage: append past the published generation, check the
  // merged base+delta answers against a direct index over the grown
  // content, surface the per-text delta telemetry, then push the overlay
  // over its threshold and verify the compaction folds it.
  {
    UsiMultiServiceOptions service_options;
    service_options.threads = 1;
    service_options.delta_compact_threshold = 64;
    UsiMultiService service(service_options);
    WeightedString ws_copy = ws;
    service.SubmitText("t", std::move(ws_copy));
    if (service.WaitForText("t") != BuildState::kReady) {
      return fail("update tier build");
    }
    Text grown = ws.text();
    std::vector<double> weights = ws.weights();
    Rng rng(0x5EE9);
    const auto append_some = [&](index_t count) {
      for (index_t i = 0; i < count; ++i) {
        const Symbol c =
            ws.letter(static_cast<index_t>(rng.UniformBelow(ws.size())));
        const double w = 1.0 + static_cast<double>(rng.UniformBelow(4));
        if (service.AppendText("t", Text(1, c), std::vector<double>{w}) !=
            ServeStatus::kOk) {
          return false;
        }
        grown.push_back(c);
        weights.push_back(w);
      }
      return true;
    };
    if (!append_some(32)) return fail("append");
    std::optional<UsiTextStats> stats = service.StatsFor("t");
    if (!stats.has_value() || !stats->delta.has_value()) {
      return fail("delta stats absent");
    }
    std::printf("update tier with a live delta (32 appends):\n");
    PrintUpdateTier(*stats);
    const WeightedString current(grown, weights);
    const UsiIndex direct(current, UsiOptions{});
    for (index_t i = 0; i + 6 <= current.size(); i += 503) {
      const Text pattern = current.Fragment(i, 6);
      QueryResult got;
      if (service.Query("t", pattern, got) != ServeStatus::kOk) {
        return fail("merged query");
      }
      const QueryResult want = direct.Query(pattern);
      if (got.occurrences != want.occurrences || got.utility != want.utility) {
        return fail("merged answer parity");
      }
    }
    if (!append_some(32)) return fail("append to threshold");
    service.WaitForBuilds();
    stats = service.StatsFor("t");
    if (!stats.has_value() || stats->compactions == 0) {
      return fail("compaction never folded");
    }
    std::printf("update tier after compaction (%llu folded generations):\n",
                static_cast<unsigned long long>(stats->compactions));
    PrintUpdateTier(*stats);
  }
  std::printf("selftest OK\n");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string mode = argv[1];
  if (mode == "info") {
    if (argc < 3) return Usage();
    bool deep = false;
    for (int i = 3; i < argc; ++i) {
      if (std::string(argv[i]) == "--deep") deep = true;
    }
    return Info(argv[2], deep);
  }
  if (mode == "convert") {
    if (argc < 4) return Usage();
    std::string to, dataset, text_file;
    index_t n = 0;
    u64 seed = 0;
    for (int i = 4; i + 1 < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--to") to = argv[++i];
      else if (flag == "--dataset") dataset = argv[++i];
      else if (flag == "--n") n = static_cast<index_t>(std::atoll(argv[++i]));
      else if (flag == "--text") text_file = argv[++i];
      else if (flag == "--seed") seed = static_cast<u64>(std::atoll(argv[++i]));
    }
    return Convert(argv[2], argv[3], to, dataset, n, text_file, seed);
  }
  if (mode == "failpoints") return Failpoints();
  if (mode == "selftest") return Selftest();
  return Usage();
}

}  // namespace
}  // namespace usi

int main(int argc, char** argv) { return usi::Main(argc, argv); }
